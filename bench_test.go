package unsched

// The benchmark harness regenerates every table and figure of the
// paper's evaluation as Go benchmarks (see DESIGN.md §4 for the
// experiment index), plus the ablations of §5. Benchmarks report the
// measured quantities through b.ReportMetric — comm_ms columns for the
// tables, fraction series for the overhead figures — so `go test
// -bench=.` output reads like the paper's tables. The cmd/experiments
// tool prints the same data in the paper's layout.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/expt"
	"unsched/internal/hypercube"
	"unsched/internal/ipsc"
	"unsched/internal/mesh"
	"unsched/internal/sched"
	"unsched/internal/topo"
	"unsched/internal/workload"
)

func benchConfig() expt.Config {
	cfg := expt.DefaultConfig()
	cfg.Samples = 2 // raise to 50 to match the paper's protocol exactly
	return cfg
}

// --- Table 1: one benchmark per density row -------------------------

func benchTable1Row(b *testing.B, d int) {
	cfg := benchConfig()
	var cells map[expt.Algorithm]expt.Cell
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = cfg.MeasureCell(d, 128*1024)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cells[expt.AC].CommMS, "AC_128K_ms")
	b.ReportMetric(cells[expt.LP].CommMS, "LP_128K_ms")
	b.ReportMetric(cells[expt.RSN].CommMS, "RSN_128K_ms")
	b.ReportMetric(cells[expt.RSNL].CommMS, "RSNL_128K_ms")
	b.ReportMetric(cells[expt.RSN].Iters, "RSN_iters")
	b.ReportMetric(cells[expt.RSNL].Iters, "RSNL_iters")
	b.ReportMetric(cells[expt.RSN].CompMS, "RSN_comp_ms")
	b.ReportMetric(cells[expt.RSNL].CompMS, "RSNL_comp_ms")
}

func BenchmarkTable1_D4(b *testing.B)  { benchTable1Row(b, 4) }
func BenchmarkTable1_D8(b *testing.B)  { benchTable1Row(b, 8) }
func BenchmarkTable1_D16(b *testing.B) { benchTable1Row(b, 16) }
func BenchmarkTable1_D32(b *testing.B) { benchTable1Row(b, 32) }
func BenchmarkTable1_D48(b *testing.B) { benchTable1Row(b, 48) }

// --- Figure 5: the (d, M) region map --------------------------------

func BenchmarkFig5Regions(b *testing.B) {
	cfg := benchConfig()
	sizes := []int64{64, 1024, 16 * 1024, 128 * 1024}
	densities := []int{4, 16, 48}
	var regions []expt.Region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		regions, err = expt.RegionMap(cfg, densities, sizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the corners the paper's Figure 5 pins down: AC wins the
	// small corner, LP the large corner (1 = holds, 0 = violated).
	acCorner, lpCorner := 0.0, 0.0
	for _, r := range regions {
		if r.Density == 4 && r.MsgBytes == 64 && r.Winner == expt.AC {
			acCorner = 1
		}
		if r.Density == 48 && r.MsgBytes == 128*1024 && r.Winner == expt.LP {
			lpCorner = 1
		}
	}
	b.ReportMetric(acCorner, "AC_corner_holds")
	b.ReportMetric(lpCorner, "LP_corner_holds")
}

// --- Figures 6-9: comm cost vs message size per density -------------

func benchCommVsSize(b *testing.B, d int) {
	cfg := benchConfig()
	sizes := []int64{16, 256, 4096, 65536, 131072}
	var series []struct{ ac, lp, rsn, rsnl float64 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series = series[:0]
		for _, size := range sizes {
			cells, err := cfg.MeasureCell(d, size)
			if err != nil {
				b.Fatal(err)
			}
			series = append(series, struct{ ac, lp, rsn, rsnl float64 }{
				cells[expt.AC].CommMS, cells[expt.LP].CommMS,
				cells[expt.RSN].CommMS, cells[expt.RSNL].CommMS,
			})
		}
	}
	for i, size := range sizes {
		b.ReportMetric(series[i].ac, fmt.Sprintf("AC_%dB_ms", size))
		b.ReportMetric(series[i].rsnl, fmt.Sprintf("RSNL_%dB_ms", size))
	}
	last := series[len(series)-1]
	b.ReportMetric(last.lp, "LP_128K_ms")
	b.ReportMetric(last.rsn, "RSN_128K_ms")
}

func BenchmarkFig6_D4(b *testing.B)  { benchCommVsSize(b, 4) }
func BenchmarkFig7_D8(b *testing.B)  { benchCommVsSize(b, 8) }
func BenchmarkFig8_D16(b *testing.B) { benchCommVsSize(b, 16) }
func BenchmarkFig9_D32(b *testing.B) { benchCommVsSize(b, 32) }

// --- Figures 10-11: scheduling overhead fraction --------------------

func benchOverhead(b *testing.B, alg expt.Algorithm) {
	cfg := benchConfig()
	sizes := []int64{64, 128, 2048, 8192, 131072}
	var series [][]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := expt.OverheadVsSize(cfg, alg, []int{4, 48}, sizes)
		if err != nil {
			b.Fatal(err)
		}
		series = [][]float64{s[0].Y, s[1].Y}
	}
	// The paper's claims: a sharp decline across the 64->128 B protocol
	// switch, and a negligible fraction for large messages.
	b.ReportMetric(series[0][0], "d4_64B_fraction")
	b.ReportMetric(series[0][1], "d4_128B_fraction")
	b.ReportMetric(series[0][len(sizes)-1], "d4_128K_fraction")
	b.ReportMetric(series[1][0], "d48_64B_fraction")
	b.ReportMetric(series[1][len(sizes)-1], "d48_128K_fraction")
}

func BenchmarkFig10_RSNOverhead(b *testing.B)  { benchOverhead(b, expt.RSN) }
func BenchmarkFig11_RSNLOverhead(b *testing.B) { benchOverhead(b, expt.RSNL) }

// --- Ablations (DESIGN.md §5) ----------------------------------------

// Randomized row shuffle vs ascending order in CCOM compression: the
// paper warns the unshuffled form causes early-phase node contention.
func BenchmarkAblationShuffle(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m, err := comm.DRegular(64, 16, 1024, rng)
	if err != nil {
		b.Fatal(err)
	}
	var shuffled, ordered float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1, err := sched.RSN(m, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		s2, err := sched.RSNOrdered(m, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		shuffled = float64(s1.NumPhases())
		ordered = float64(s2.NumPhases())
	}
	b.ReportMetric(shuffled, "shuffled_phases")
	b.ReportMetric(ordered, "ordered_phases")
}

// Pairwise-exchange priority on vs off in RS_NL, on a symmetric
// pattern where pairing matters most.
func BenchmarkAblationPairwise(b *testing.B) {
	cube := hypercube.MustNew(6)
	params := costmodel.DefaultIPSC860()
	m := comm.MustNew(64)
	rng := rand.New(rand.NewSource(6))
	for count := 0; count < 256; count++ {
		i, j := rng.Intn(64), rng.Intn(64)
		if i != j {
			m.Set(i, j, 32*1024)
			m.Set(j, i, 32*1024)
		}
	}
	var with, without float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1, err := sched.RSNL(m, cube, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		r1, err := ipsc.RunS1(cube, params, s1)
		if err != nil {
			b.Fatal(err)
		}
		s2, err := sched.RSNLNoPairwise(m, cube, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		r2, err := ipsc.RunS1(cube, params, s2)
		if err != nil {
			b.Fatal(err)
		}
		with = r1.MakespanUS / 1000
		without = r2.MakespanUS / 1000
	}
	b.ReportMetric(with, "pairwise_ms")
	b.ReportMetric(without, "no_pairwise_ms")
}

// S1 vs S2 execution of the same RS_NL schedule on a symmetric
// pattern (the paper: S1 wins when the algorithm exploits pairwise
// exchange; on asymmetric patterns with few exchange opportunities the
// ordering can flip, which is §6's "unless ... the algorithm does not
// exploit the pairwise bidirectional communication").
func BenchmarkAblationProtocol(b *testing.B) {
	cube := hypercube.MustNew(6)
	params := costmodel.DefaultIPSC860()
	rng := rand.New(rand.NewSource(7))
	m := comm.MustNew(64)
	for count := 0; count < 512; count++ {
		i, j := rng.Intn(64), rng.Intn(64)
		if i != j {
			m.Set(i, j, 64*1024)
			m.Set(j, i, 64*1024)
		}
	}
	s, err := sched.RSNL(m, cube, rng)
	if err != nil {
		b.Fatal(err)
	}
	var s1ms, s2ms float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, err := ipsc.RunS1(cube, params, s)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := ipsc.RunS2(cube, params, s)
		if err != nil {
			b.Fatal(err)
		}
		s1ms = r1.MakespanUS / 1000
		s2ms = r2.MakespanUS / 1000
	}
	b.ReportMetric(s1ms, "S1_ms")
	b.ReportMetric(s2ms, "S2_ms")
}

// CCOM compression vs direct O(n^2) COM scanning in RS_N: schedule
// quality is the same, scheduling cost is not (§4.2).
func BenchmarkAblationCompression(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m, err := comm.DRegular(64, 8, 1024, rng)
	if err != nil {
		b.Fatal(err)
	}
	params := costmodel.DefaultIPSC860()
	var compressed, uncompressed float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1, err := sched.RSN(m, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		s2, err := sched.RSNUncompressed(m, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		compressed = params.CompTimeMS(s1.Ops)
		uncompressed = params.CompTimeMS(s2.Ops)
	}
	b.ReportMetric(compressed, "ccom_comp_ms")
	b.ReportMetric(uncompressed, "full_scan_comp_ms")
}

// Blocking csend vs idealized unbounded-async sends in AC: how much of
// AC's large-message collapse is head-of-line blocking.
func BenchmarkAblationAsyncAC(b *testing.B) {
	cube := hypercube.MustNew(6)
	params := costmodel.DefaultIPSC860()
	rng := rand.New(rand.NewSource(9))
	m, err := comm.DRegular(64, 16, 128*1024, rng)
	if err != nil {
		b.Fatal(err)
	}
	order, err := sched.AC(m)
	if err != nil {
		b.Fatal(err)
	}
	var blocking, async float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, err := ipsc.RunAC(cube, params, order, m)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := ipsc.RunACAsync(cube, params, order, m)
		if err != nil {
			b.Fatal(err)
		}
		blocking = r1.MakespanUS / 1000
		async = r2.MakespanUS / 1000
	}
	b.ReportMetric(blocking, "blocking_ms")
	b.ReportMetric(async, "async_ms")
}

// Loose synchrony (S1 ready signals) vs global barrier per phase: the
// cost §6's modification avoids.
func BenchmarkAblationSynchrony(b *testing.B) {
	cube := hypercube.MustNew(6)
	params := costmodel.DefaultIPSC860()
	rng := rand.New(rand.NewSource(12))
	m, err := comm.DRegular(64, 8, 8192, rng)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.RSNL(m, cube, rng)
	if err != nil {
		b.Fatal(err)
	}
	var loose, strict float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, err := ipsc.RunS1(cube, params, s)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := ipsc.RunS1Barrier(cube, params, s)
		if err != nil {
			b.Fatal(err)
		}
		loose = r1.MakespanUS / 1000
		strict = r2.MakespanUS / 1000
	}
	b.ReportMetric(loose, "loose_sync_ms")
	b.ReportMetric(strict, "global_barrier_ms")
}

// Hypercube vs mesh vs torus for the same pattern and scheduler — the
// §5 topology generalization at work.
func BenchmarkAblationTopology(b *testing.B) {
	params := costmodel.DefaultIPSC860()
	rng := rand.New(rand.NewSource(13))
	m, err := comm.DRegular(64, 8, 16*1024, rng)
	if err != nil {
		b.Fatal(err)
	}
	nets := []topo.Topology{
		hypercube.MustNew(6),
		mesh.MustNew(8, 8, false),
		mesh.MustNew(8, 8, true),
	}
	results := make([]float64, len(nets))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ni, net := range nets {
			s, err := sched.RSNL(m, net, rand.New(rand.NewSource(int64(i))))
			if err != nil {
				b.Fatal(err)
			}
			r, err := ipsc.RunS1(net, params, s)
			if err != nil {
				b.Fatal(err)
			}
			results[ni] = r.MakespanUS / 1000
		}
	}
	b.ReportMetric(results[0], "hypercube_ms")
	b.ReportMetric(results[1], "mesh_ms")
	b.ReportMetric(results[2], "torus_ms")
}

// Non-uniform message sizes: plain RS_NL vs the size-aware variant vs
// largest-first list scheduling — the [15] extension measured on
// simulated makespan, not just the phase-max proxy.
func BenchmarkExtensionNonUniform(b *testing.B) {
	cube := hypercube.MustNew(6)
	params := costmodel.DefaultIPSC860()
	m, err := comm.MixedSizes(64, 8, 64, 64*1024, rand.New(rand.NewSource(14)))
	if err != nil {
		b.Fatal(err)
	}
	var plain, sized, lf float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1, err := sched.RSNL(m, cube, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		r1, err := ipsc.RunS1(cube, params, s1)
		if err != nil {
			b.Fatal(err)
		}
		s2, err := sched.RSNLSized(m, cube, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		r2, err := ipsc.RunS1(cube, params, s2)
		if err != nil {
			b.Fatal(err)
		}
		s3, err := sched.GreedyLargestFirstLinkFree(m, cube)
		if err != nil {
			b.Fatal(err)
		}
		r3, err := ipsc.RunS1(cube, params, s3)
		if err != nil {
			b.Fatal(err)
		}
		plain = r1.MakespanUS / 1000
		sized = r2.MakespanUS / 1000
		lf = r3.MakespanUS / 1000
	}
	b.ReportMetric(plain, "RSNL_ms")
	b.ReportMetric(sized, "RSNL_sized_ms")
	b.ReportMetric(lf, "greedy_LF_link_ms")
}

// The paper's phase-count claim: RS_N completes in about d + log d
// permutations for random d-regular workloads.
func BenchmarkPhaseCountScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	densities := []int{4, 8, 16, 32, 48}
	means := make([]float64, len(densities))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for di, d := range densities {
			total := 0
			const samples = 5
			for s := 0; s < samples; s++ {
				m, err := comm.DRegular(64, d, 1024, rng)
				if err != nil {
					b.Fatal(err)
				}
				sc, err := sched.RSN(m, rng)
				if err != nil {
					b.Fatal(err)
				}
				total += sc.NumPhases()
			}
			means[di] = float64(total) / samples
		}
	}
	for di, d := range densities {
		b.ReportMetric(means[di], fmt.Sprintf("iters_d%d", d))
	}
}

// --- Campaign engine: parallel vs sequential fan-out ----------------

// benchCampaign measures a multi-cell campaign (a density sweep at two
// message sizes) at a fixed worker count. The parallel and sequential
// variants produce bit-identical results; on a multi-core machine the
// parallel one finishes close to GOMAXPROCS times sooner.
func benchCampaign(b *testing.B, parallelism int) {
	cfg := benchConfig()
	r := &expt.Runner{Config: cfg, Parallelism: parallelism}
	var points []expt.Point
	for _, d := range []int{4, 8, 16, 32} {
		for _, size := range []int64{1024, 16 * 1024} {
			points = append(points, expt.Point{Density: d, MsgBytes: size})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.MeasureCells(context.Background(), points); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(parallelism), "workers")
}

func BenchmarkCampaignSequential(b *testing.B) { benchCampaign(b, 1) }
func BenchmarkCampaignParallel(b *testing.B)   { benchCampaign(b, runtime.GOMAXPROCS(0)) }

// benchCampaignTorus is benchCampaign on the 8x8 torus — the same
// node count and grid as the hypercube campaign above, so the pair
// prices the topology generalization: longer XY routes mean a bigger
// route table, more occupancy work per Check_Path, and more phases
// per schedule. Tracked by the CI benchgate alongside the cube runs.
func benchCampaignTorus(b *testing.B, parallelism int) {
	cfg := benchConfig()
	cfg.Topology = mesh.MustNew(8, 8, true)
	r := &expt.Runner{Config: cfg, Parallelism: parallelism}
	var points []expt.Point
	for _, d := range []int{4, 8, 16, 32} {
		for _, size := range []int64{1024, 16 * 1024} {
			points = append(points, expt.Point{Density: d, MsgBytes: size})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.MeasureCells(context.Background(), points); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(parallelism), "workers")
}

func BenchmarkCampaignTorusSequential(b *testing.B) { benchCampaignTorus(b, 1) }
func BenchmarkCampaignTorusParallel(b *testing.B)   { benchCampaignTorus(b, runtime.GOMAXPROCS(0)) }

// --- Micro-benchmarks: raw scheduler and simulator throughput -------

func benchScheduler(b *testing.B, build func(*comm.Matrix, *rand.Rand) (*sched.Schedule, error)) {
	rng := rand.New(rand.NewSource(10))
	m, err := comm.DRegular(64, 16, 1024, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build(m, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerLP(b *testing.B) {
	benchScheduler(b, func(m *comm.Matrix, _ *rand.Rand) (*sched.Schedule, error) {
		return sched.LP(m)
	})
}

func BenchmarkSchedulerRSN(b *testing.B) {
	benchScheduler(b, sched.RSN)
}

func BenchmarkSchedulerRSNL(b *testing.B) {
	cube := hypercube.MustNew(6)
	benchScheduler(b, func(m *comm.Matrix, rng *rand.Rand) (*sched.Schedule, error) {
		return sched.RSNL(m, cube, rng)
	})
}

func BenchmarkSchedulerGreedy(b *testing.B) {
	benchScheduler(b, func(m *comm.Matrix, _ *rand.Rand) (*sched.Schedule, error) {
		return sched.Greedy(m)
	})
}

func BenchmarkSimulatorRSNL(b *testing.B) {
	cube := hypercube.MustNew(6)
	params := costmodel.DefaultIPSC860()
	rng := rand.New(rand.NewSource(11))
	m, err := comm.DRegular(64, 16, 4096, rng)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.RSNL(m, cube, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ipsc.RunS1(cube, params, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorRSNLReused is BenchmarkSimulatorRSNL on one
// reusable Machine over a dense route table — the configuration every
// campaign worker and daemon worker runs in: routes come from the
// table's CSR arrays and channel occupancy goes word-at-a-time through
// its bitset spans. Compare allocs/op against the fresh-machine
// benchmark above.
func BenchmarkSimulatorRSNLReused(b *testing.B) {
	cube := hypercube.MustNew(6)
	params := costmodel.DefaultIPSC860()
	rng := rand.New(rand.NewSource(11))
	m, err := comm.DRegular(64, 16, 4096, rng)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.RSNL(m, cube, rng)
	if err != nil {
		b.Fatal(err)
	}
	mach, err := ipsc.NewMachine(topo.NewRouteTable(cube), params)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mach.RunS1(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorRSNL_1024 scales the reused-machine benchmark to
// the service's classic 1024-node cap (the dim-10 cube): ~16x the
// events of the 64-node run through the same flat-event engine, arena
// state, and word-mask occupancy, so hot-path regressions that only
// bite at depth — queue scans over more distinct times, bitset spans
// over 5120 channels — show up here before they show up in a campaign.
func BenchmarkSimulatorRSNL_1024(b *testing.B) {
	cube := hypercube.MustNew(10)
	params := costmodel.DefaultIPSC860()
	rng := rand.New(rand.NewSource(11))
	m, err := comm.DRegular(1024, 4, 4096, rng)
	if err != nil {
		b.Fatal(err)
	}
	table := topo.NewRouteTable(cube)
	core := sched.NewCoreForTable(table)
	s, err := core.RSNL(m, rng)
	if err != nil {
		b.Fatal(err)
	}
	mach, err := ipsc.NewMachine(table, params)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mach.RunS1(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteTableBitset is the occupancy micro-benchmark under the
// simulator: probe-claim-release of whole routes against the packed
// []uint64 channel bitset, word-at-a-time through the table's mask
// spans. One op is one full probe+claim+probe+release cycle over a
// route of the 64-node cube.
func BenchmarkRouteTableBitset(b *testing.B) {
	cube := hypercube.MustNew(6)
	rt := topo.NewRouteTable(cube)
	if !rt.Masked() {
		b.Fatal("cube table should carry mask spans")
	}
	busy := make([]uint64, topo.BitsetWords(cube.NumChannels()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i & 63
		dst := (i * 31) & 63
		if rt.RouteFree(busy, src, dst) {
			rt.ClaimRoute(busy, src, dst)
			if rt.RouteFree(busy, src, dst) && src != dst {
				b.Fatal("claimed route reads free")
			}
			rt.ReleaseRoute(busy, src, dst)
		}
	}
}

// --- Scheduler cores: reused (precomputed routes) vs throwaway ------

// benchSchedMatrix is the shared workload of the BenchmarkSched*
// pair: the paper's machine at d=16, the densest Table 1 row below
// half machine size.
func benchSchedMatrix(b *testing.B) *comm.Matrix {
	b.Helper()
	m, err := comm.DRegular(64, 16, 4096, rand.New(rand.NewSource(10)))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkSchedCoreRSNLReused is the steady-state configuration of
// campaign and unschedd workers: one reusable core whose occupancy
// tables walk a precomputed route table. Compare allocs/op against
// the throwaway benchmark below — the gap is what core reuse saves on
// every request.
func BenchmarkSchedCoreRSNLReused(b *testing.B) {
	m := benchSchedMatrix(b)
	core := sched.NewCore(hypercube.MustNew(6))
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RSNL(m, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedCoreRSNLThrowaway is the package-level path: every
// call rebuilds all scratch state and generates e-cube routes on the
// fly.
func BenchmarkSchedCoreRSNLThrowaway(b *testing.B) {
	m := benchSchedMatrix(b)
	cube := hypercube.MustNew(6)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.RSNL(m, cube, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedCoreGreedyLFLinkReused exercises the recycled
// per-phase occupancy pool; the throwaway variant allocates a fresh
// O(channels) table for every phase it opens.
func BenchmarkSchedCoreGreedyLFLinkReused(b *testing.B) {
	m := benchSchedMatrix(b)
	core := sched.NewCore(hypercube.MustNew(6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyLargestFirstLinkFree(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedCoreGreedyLFLinkThrowaway(b *testing.B) {
	m := benchSchedMatrix(b)
	cube := hypercube.MustNew(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.GreedyLargestFirstLinkFree(m, cube); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedCoreRoundTripReused measures the full steady-state
// pipeline of a worker goroutine: schedule on a reused core, simulate
// on a reused machine.
func BenchmarkSchedCoreRoundTripReused(b *testing.B) {
	m := benchSchedMatrix(b)
	cube := hypercube.MustNew(6)
	core := sched.NewCore(cube)
	mach, err := ipsc.NewMachine(cube, costmodel.DefaultIPSC860())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.RSNL(m, rng)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mach.RunS1(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteTableBuild prices the precomputation itself, so the
// "when does the table pay off" break-even in the README stays
// honest.
func BenchmarkRouteTableBuild(b *testing.B) {
	cube := hypercube.MustNew(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rt := topo.NewRouteTable(cube); rt.Nodes() != 64 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkEcubeRouting(b *testing.B) {
	cube := hypercube.MustNew(6)
	var buf []hypercube.Channel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = cube.Route(i%64, (i*31)%64, buf[:0])
	}
	_ = buf
}

// --- Workload generators: spec builds into reused matrices ----------

// benchWorkloadGen measures one spec regenerating into a reused
// 64-node matrix — the exact configuration of a campaign worker's
// pattern stage. Tracked by the CI benchgate (the Workload regex), so
// a generator that silently reverts to per-cell O(n^2) allocation or
// super-linear drawing fails the gate.
func benchWorkloadGen(b *testing.B, spec string) {
	sp, err := workload.ParseSpec(spec)
	if err != nil {
		b.Fatal(err)
	}
	m := comm.MustNew(64)
	rng := rand.New(rand.NewSource(19))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sp.BuildInto(m, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGenUniform(b *testing.B)   { benchWorkloadGen(b, "uniform:16:1024") }
func BenchmarkWorkloadGenScatter(b *testing.B)   { benchWorkloadGen(b, "scatter:16:1024") }
func BenchmarkWorkloadGenHotspot(b *testing.B)   { benchWorkloadGen(b, "hotspot:16:1024:4") }
func BenchmarkWorkloadGenHalo(b *testing.B)      { benchWorkloadGen(b, "halo:32x32:512") }
func BenchmarkWorkloadGenSpMV(b *testing.B)      { benchWorkloadGen(b, "spmv:8:8") }
func BenchmarkWorkloadGenStencil3D(b *testing.B) { benchWorkloadGen(b, "stencil3d:8x8x8:64") }

// BenchmarkCampaignWorkloadMix prices a full non-uniform campaign —
// the workload axis end to end through the parallel runner on a torus.
func BenchmarkCampaignWorkloadMix(b *testing.B) {
	cfg := benchConfig()
	cfg.Topology = mesh.MustNew(8, 8, true)
	specs := []workload.Spec{
		workload.MustParseSpec("halo:32x32:512"),
		workload.MustParseSpec("hotspot:8:4096:4"),
		workload.MustParseSpec("stencil3d:8x8x8:256"),
		workload.MustParseSpec("spmv:8:8"),
	}
	r := &expt.Runner{Config: cfg, Parallelism: runtime.GOMAXPROCS(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.MeasureWorkloads(context.Background(), specs); err != nil {
			b.Fatal(err)
		}
	}
}
