// Package unsched schedules unstructured (all-to-many personalized)
// communication on circuit-switched hypercubes, reproducing Wang &
// Ranka, "Scheduling of Unstructured Communication on the Intel
// iPSC/860" (SC 1994).
//
// Given an n x n communication matrix COM — COM(i,j) = m > 0 when
// processor Pi must send m bytes to Pj — the package decomposes the
// communication into partial permutations (phases) that avoid node
// contention and, optionally, link contention under e-cube routing:
//
//   - AC: the asynchronous baseline — no scheduling at all (§3)
//   - LP: XOR linear permutations, all pairwise exchanges, n-1 phases,
//     contention-free by construction (§4.1)
//   - RSN: randomized scheduling avoiding node contention (§4.2)
//   - RSNL: randomized scheduling avoiding node and link contention,
//     with pairwise-exchange priority (§5)
//
// plus a deterministic greedy baseline and largest-first variants for
// non-uniform message sizes.
//
// Because the iPSC/860 no longer exists, the package ships two
// substitutes for it: a deterministic discrete-event simulator of the
// circuit-switched hypercube (Simulate*), calibrated against published
// iPSC/860 measurements, and a goroutine-based message-passing runtime
// (internal/mpemu, surfaced through the examples) that executes
// schedules with real payloads and verifies delivery.
//
// The quickest start:
//
//	cube := unsched.NewCube(6) // 64 nodes
//	m, _ := unsched.UniformRandom(64, 8, 4096, rng)
//	s, _ := unsched.RSNL(m, cube, rng)
//	res, _ := unsched.SimulateS1(cube, unsched.DefaultIPSC860(), s)
//	fmt.Printf("%.2f ms in %d phases\n", res.MakespanUS/1000, s.NumPhases())
//
// The experiment harness that regenerates every table and figure of
// the paper lives behind cmd/experiments; the root bench suite
// (bench_test.go) exposes the same measurements as Go benchmarks.
package unsched
