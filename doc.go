// Package unsched schedules unstructured (all-to-many personalized)
// communication on circuit-switched hypercubes, reproducing Wang &
// Ranka, "Scheduling of Unstructured Communication on the Intel
// iPSC/860" (SC 1994).
//
// Given an n x n communication matrix COM — COM(i,j) = m > 0 when
// processor Pi must send m bytes to Pj — the package decomposes the
// communication into partial permutations (phases) that avoid node
// contention and, optionally, link contention under e-cube routing:
//
//   - AC: the asynchronous baseline — no scheduling at all (§3)
//   - LP: XOR linear permutations, all pairwise exchanges, n-1 phases,
//     contention-free by construction (§4.1)
//   - RSN: randomized scheduling avoiding node contention (§4.2)
//   - RSNL: randomized scheduling avoiding node and link contention,
//     with pairwise-exchange priority (§5)
//
// plus a deterministic greedy baseline and largest-first variants for
// non-uniform message sizes.
//
// Because the iPSC/860 no longer exists, the package ships two
// substitutes for it: a deterministic discrete-event simulator of the
// circuit-switched hypercube (Simulate*), calibrated against published
// iPSC/860 measurements, and a goroutine-based message-passing runtime
// (internal/mpemu, surfaced through the examples) that executes
// schedules with real payloads and verifies delivery.
//
// The quickest start:
//
//	cube := unsched.NewCube(6) // 64 nodes
//	m, _ := unsched.UniformRandom(64, 8, 4096, rng)
//	s, _ := unsched.RSNL(m, cube, rng)
//	res, _ := unsched.SimulateS1(cube, unsched.DefaultIPSC860(), s)
//	fmt.Printf("%.2f ms in %d phases\n", res.MakespanUS/1000, s.NumPhases())
//
// The experiment harness that regenerates every table and figure of
// the paper lives behind cmd/experiments; the root bench suite
// (bench_test.go) exposes the same measurements as Go benchmarks.
//
// # Topologies
//
// The schedulers, simulator, and experiment engine are generic over
// Topology — any deterministic-routing network, which is all the
// paper's approach requires (§5). Built-in machines: the hypercube
// (e-cube routing), 2D mesh and torus (XY routing), rings, and
// arbitrary connected graphs routed by canonical BFS shortest paths
// with lowest-id tie-breaking. TopologySpec is the shared vocabulary:
// parse "cube:6", "torus:8x8", "ring:12", or "graph:5:0-1,..." with
// ParseTopologySpec and Build the machine; the unschedd topology wire
// field and the experiments -topo flag accept the same grammar.
//
// # Workloads
//
// The other campaign axis gets the same treatment: WorkloadSpec is
// the canonical description of a communication pattern, parsed from
// strings like "uniform:8:4096" (the paper's d-regular sweep),
// "hotspot:8:4096:4", "halo:64x64:512", "spmv:12:8", "perm:2048",
// "transpose:4096", "shift:3:1024", "stencil3d:8x8x8:64",
// "bitcomp:1024", and "alltoall:256" with ParseWorkloadSpec. Specs
// are machine-sized at build time (Spec.Build(n, rng)), so one spec
// sweeps unchanged across topologies; the unschedd workload wire
// fields, the experiments -workload flag, and unsched -pattern all
// accept the same grammar. Each generator also has an Into form that
// regenerates into a reused matrix, which is how campaign workers
// avoid allocating n^2 storage per cell.
//
// # Parallel campaigns
//
// Measurement campaigns run on a worker-pool engine
// (ExperimentRunner): every (workload, sample) combination is one
// independent unit, fanned across up to GOMAXPROCS workers, each
// owning a reusable simulator machine (SimMachine), scheduler core,
// and workload matrix; a unit regenerates its matrix once and
// measures all four algorithms on it. The campaign grid is
// (topology x workload x sample): the machine is
// ExperimentConfig.Topology — any Topology with a power-of-two node
// count (LP's XOR pairing needs one) runs the paper's full §6
// protocol, all workers sharing one precomputed RouteTable per
// campaign — and the cells are workload specs (MeasureWorkloads, or
// the classic uniform sweeps behind Table1 and the figures).
// Randomness is organized so parallelism can never change a result:
// the master seed plus a unit's own coordinates (its workload's
// stream key, its sample, its algorithm) name its RNG streams via a
// SplitMix64-keyed source (internal/stats), so a unit draws the same
// numbers whether it runs first, last, or concurrently with the
// rest. Campaign output is therefore bit-identical at every worker
// count — a tested invariant, not an accident:
//
//	runner := unsched.NewExperimentRunner(cfg, 0) // 0 = GOMAXPROCS
//	runner.Progress = func(done, total int) { fmt.Printf("\r%d/%d", done, total) }
//	halo, _ := unsched.ParseWorkloadSpec("halo:64x64:512")
//	cells, err := runner.MeasureWorkloads(ctx, []unsched.WorkloadSpec{halo})
//
// To reproduce the paper's exact protocol, set Samples to 50 in the
// config and run any campaign; the default seed 1994 pins the full
// random universe of the evaluation.
//
// # Route tables and reusable scheduler cores
//
// Deterministic routing means every route is a pure function of
// (src, dst) — the paper's §5 observation that "for regular topologies
// the size of PATHS can be much smaller". NewRouteTable precomputes
// all n^2 routes of a Topology into a CSR-packed read-only table
// (O(n^2 * diameter) memory: ~64 KB for the 64-node cube), built once
// and shared across any number of goroutines. Precomputation costs
// one route generation per pair, so it pays off as soon as a topology
// serves more than a handful of schedules; for one-shot scheduling the
// package-level functions keep generating routes on the fly.
//
// NewSchedCore pairs such a table with a reusable scheduler instance
// (SchedCore) that owns all scheduling scratch — CCOM row storage,
// channel-occupancy tables, busy vectors, partition buffers — and
// re-initializes it in place per call, mirroring SimMachine's
// Reset-reuse contract: one core per goroutine, any number of
// schedules, (near) zero allocation beyond the returned Schedule.
// Core methods consume the identical RNG stream as the package-level
// functions, so their schedules are bit-identical; the campaign
// workers and every unschedd worker run on cached cores.
//
//	table := unsched.NewRouteTable(cube)        // once per topology
//	core := unsched.NewSchedCoreForTable(table) // once per goroutine
//	for _, m := range workload {
//		s, _ := core.RSNL(m, rng) // no per-call scratch allocation
//		res, _ := mach.RunS1(s)
//		...
//	}
//
// # Scheduling as a service
//
// The same machinery runs as a long-lived daemon: NewServer returns an
// http.Handler (served standalone by cmd/unschedd) exposing
// POST /v1/schedule, POST /v1/simulate, and async POST /v1/campaign
// jobs — campaigns sweep either the classic density grid or a
// workloads spec list, and schedule requests may name a workload
// instead of shipping a matrix. Requests execute on a bounded worker
// pool where each worker owns reusable SimMachines, responses are
// memoized in a sharded LRU keyed by a canonical content hash of
// (matrix or workload, algorithm, topology, params, seed), and
// randomized schedulers — and server-generated workloads — derive
// their RNG seed from that same hash, so identical requests return
// bit-identical patterns and schedules whether they hit the cache or
// recompute. A full queue sheds load with 429; Close drains
// gracefully.
//
// Daemons scale out without coordination: since the cache is
// content-addressed, ServerOptions.Peers (cmd/unschedd -peers) joins
// N daemons into a fleet serving one logical cache. Rendezvous
// hashing assigns every key an owning member, a miss on a non-owned
// key fetches the owner's checksummed record (budgeted, with a hedged
// second probe near p90) under the same single-flight slot before
// computing, and locally computed non-owned records are pushed to
// their owner by a bounded write-behind queue — so the fleet
// converges on one compute per unique key while every member's
// responses stay byte-identical to a solo daemon's. Peers are an
// accelerator, never a dependency: any peer failure falls back to
// local compute. See the README's "Fleet mode" section and
// examples/fleet for the 3-daemon walkthrough.
//
// # Algorithm selection
//
// The daemon also answers "algorithm": "auto" — a portfolio
// meta-scheduler calibrated by the service's own campaigns. Every
// scheduling run emits a SchedOutcome (estimated communication,
// modeled scheduling cost, and the matrix's SchedFeatures); campaigns
// aggregate them into QualityRecords on an append-only store
// (QualityStore, ServerOptions.QualityStore), and a QualityModel bins
// the records by (topology kind, node count, density, size variation)
// and ranks each bin's algorithms by mean total cost. "auto" resolves
// through Model.Pick BEFORE cache-key fingerprinting, so an auto
// request shares its cache slot, ETag, and bytes with a direct
// request for the chosen tag — bit-identically across servers sharing
// a calibration store. Uncalibrated bins answer from a committed
// fallback table (regenerate with the experiments CLI's autofallback
// target); "auto_race": true races the model's top candidates and
// keeps the best simulated schedule. See the README's "Algorithm
// selection" section and examples/autosched for the full loop.
//
// The wire surface is versioned and negotiable. Responses come back
// as JSON by default or, with Accept: application/x-unsched-binary,
// as a compact varint-based binary envelope (DecodeBinaryResponse
// parses it; DecodeMatrixBinary handles the embedded matrix block)
// that gzips to a fraction of the JSON size. The response's content
// hash doubles as a strong ETag, so If-None-Match revalidation
// answers 304 with zero body bytes before any scheduling work, and
// POST /v1/schedule/batch streams many schedule requests through the
// worker pool as NDJSON lines in completion order. Errors carry a
// stable machine-readable code next to the human message
// (ErrorEnvelope); clients branch on the code, never the text.
package unsched
