package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unsched/internal/quality"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenRun executes the command in-process and returns stdout.
func goldenRun(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run %v: %v\nstderr: %s", args, err, stderr.String())
	}
	return stdout.String()
}

// checkGolden pins the reproduction's exact output bytes: any change
// to the measurement pipeline — RNG streams, aggregation order,
// formatting — shows up as a diff against testdata. Regenerate
// deliberately with `go test ./cmd/experiments -run Golden -update`.
func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverged from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	got := goldenRun(t, "-samples", "2", "-seed", "1994", "-dim", "4", "table1")
	checkGolden(t, "table1_dim4_s2.golden", got)
}

func TestGoldenFig5(t *testing.T) {
	got := goldenRun(t, "-samples", "2", "-seed", "1994", "-dim", "4", "fig5")
	checkGolden(t, "fig5_dim4_s2.golden", got)
}

// TestGoldenOutputParallelInvariant reruns the golden workload at
// -parallel 1: the bytes must match the default-parallelism golden,
// the command-level form of the runner's determinism guarantee.
func TestGoldenOutputParallelInvariant(t *testing.T) {
	got := goldenRun(t, "-samples", "2", "-seed", "1994", "-dim", "4", "-parallel", "1", "table1")
	checkGolden(t, "table1_dim4_s2.golden", got)
}

// TestAllStopsAtFirstFailure: on a 16-node machine fig8 (d=16) is the
// first target in the canonical order that cannot run; `all` must
// produce everything before it, then stop with an error naming it.
func TestAllStopsAtFirstFailure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-samples", "1", "-seed", "1", "-dim", "4", "all"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("all on a 16-node machine should fail at fig8")
	}
	if !strings.Contains(err.Error(), "fig8") {
		t.Errorf("error does not name the failing target: %v", err)
	}
	out := stdout.String()
	for _, ran := range []string{"==== table1 ====", "==== fig5 ====", "==== fig6 ====", "==== fig7 ===="} {
		if !strings.Contains(out, ran) {
			t.Errorf("target %q did not run before the failure", ran)
		}
	}
	if strings.Contains(out, "==== fig9 ====") {
		t.Error("all continued past the first failing target")
	}
}

// TestProgressWithoutTerminal: when stderr is not a character device
// the progress ticker must not emit carriage-return animation, and
// must be coarse (deciles), not one line per unit.
func TestProgressWithoutTerminal(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-samples", "2", "-seed", "1994", "-dim", "4", "-progress", "table1"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	prog := stderr.String()
	if strings.Contains(prog, "\r") {
		t.Error("non-terminal progress used carriage returns")
	}
	if !strings.Contains(prog, "(100%)") {
		t.Errorf("progress never reported completion:\n%s", prog)
	}
	lines := strings.Count(prog, "\n")
	// 2 densities x 3 sizes x 2 samples x 4 algorithms = 48 units; the
	// decile printer must compress that far below one line per unit.
	if lines > 15 {
		t.Errorf("progress printed %d lines for 48 units; want decile granularity", lines)
	}
}

func TestUnknownTargetFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dim", "4", "fig99"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown target accepted")
	}
	if err := run([]string{"-dim", "4"}, &stdout, &stderr); err == nil {
		t.Fatal("missing target accepted")
	}
}

// TestTopoFlag drives the -topo spec path: a torus table renders, the
// cube spec reproduces the -dim golden byte for byte, and the flag
// conflicts and non-power-of-two machines are rejected up front.
func TestTopoFlag(t *testing.T) {
	got := goldenRun(t, "-samples", "1", "-seed", "7", "-topo", "torus:4x4", "table1")
	if !strings.Contains(got, "16-node machine") {
		t.Errorf("torus:4x4 table does not report the 16-node machine:\n%s", got)
	}
	// -topo cube:4 is the same machine as -dim 4: identical output.
	viaDim := goldenRun(t, "-samples", "2", "-seed", "1994", "-dim", "4", "table1")
	viaSpec := goldenRun(t, "-samples", "2", "-seed", "1994", "-topo", "cube:4", "table1")
	if viaDim != viaSpec {
		t.Errorf("-topo cube:4 output differs from -dim 4:\n--- dim\n%s--- topo\n%s", viaDim, viaSpec)
	}

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-topo", "torus:4x4", "-dim", "4", "table1"}, &stdout, &stderr); err == nil {
		t.Error("-topo with explicit -dim accepted")
	}
	if err := run([]string{"-topo", "ring:12", "table1"}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "power-of-two") {
		t.Errorf("non-power-of-two machine error = %v, want a power-of-two explanation", err)
	}
	if err := run([]string{"-topo", "klein:4", "table1"}, &stdout, &stderr); err == nil {
		t.Error("bad spec accepted")
	}
}

// TestGoldenWorkloads pins the workload-generic campaign output: a
// mixed non-uniform grid on a torus, byte-identical across runs and —
// via the parallel variant below — across worker counts.
func TestGoldenWorkloads(t *testing.T) {
	got := goldenRun(t, "-samples", "2", "-seed", "1994", "-topo", "torus:4x4",
		"-workload", "halo:6x6:512,shift:3:2048,hotspot:4:1024:2,stencil3d:4x4x4:64", "workloads")
	checkGolden(t, "workloads_torus4x4_s2.golden", got)
}

func TestGoldenWorkloadsParallelInvariant(t *testing.T) {
	got := goldenRun(t, "-samples", "2", "-seed", "1994", "-topo", "torus:4x4",
		"-workload", "halo:6x6:512,shift:3:2048,hotspot:4:1024:2,stencil3d:4x4x4:64", "-parallel", "1", "workloads")
	checkGolden(t, "workloads_torus4x4_s2.golden", got)
}

// TestGoldenAutoeval pins the auto-vs-fixed comparison table: the
// calibration measurements, the model's per-cell pick, and the summary
// lines demonstrating the acceptance bar (auto's mean no worse than
// the best fixed algorithm, p50 scheduling cost no worse than RS_NL).
func TestGoldenAutoeval(t *testing.T) {
	got := goldenRun(t, "-samples", "2", "-seed", "1994", "-dim", "4", "autoeval")
	checkGolden(t, "autoeval_dim4_s2.golden", got)
}

func TestGoldenAutoevalParallelInvariant(t *testing.T) {
	got := goldenRun(t, "-samples", "2", "-seed", "1994", "-dim", "4", "-parallel", "1", "autoeval")
	checkGolden(t, "autoeval_dim4_s2.golden", got)
}

// TestGoldenAutofallback pins the generated fallback-table literal on
// the small machine; the committed internal/quality/fallback.go table
// comes from the same target on the 64-node default.
func TestGoldenAutofallback(t *testing.T) {
	got := goldenRun(t, "-samples", "2", "-seed", "1994", "-dim", "4", "autofallback")
	checkGolden(t, "autofallback_dim4_s2.golden", got)
}

// TestAutoFlags covers the new flag plumbing: -quality-db persists the
// calibration records of an autoeval run, a fixed -algorithm pins the
// evaluated policy, and misuse is rejected up front.
func TestAutoFlags(t *testing.T) {
	db := filepath.Join(t.TempDir(), "quality.usqr")
	got := goldenRun(t, "-samples", "1", "-seed", "7", "-dim", "4", "-quality-db", db, "autoeval")
	if !strings.Contains(got, "chosen") {
		t.Errorf("autoeval output missing the chosen column:\n%s", got)
	}
	model, err := quality.LoadModel(db)
	if err != nil {
		t.Fatal(err)
	}
	// 2 densities x 3 sizes x 4 algorithms on the 16-node machine.
	if model.Records() != 24 {
		t.Errorf("quality store holds %d records, want 24", model.Records())
	}

	pinned := goldenRun(t, "-samples", "1", "-seed", "7", "-dim", "4", "-algorithm", "RS_NL", "autoeval")
	if !strings.Contains(pinned, "RS_NL\n") || strings.Contains(pinned, " LP\n") {
		t.Errorf("-algorithm RS_NL did not pin every chosen cell:\n%s", pinned)
	}

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dim", "4", "-quality-db", db, "table1"}, &stdout, &stderr); err == nil {
		t.Error("-quality-db with a classic target accepted")
	}
	if err := run([]string{"-dim", "4", "-algorithm", "RS-NL", "autoeval"}, &stdout, &stderr); err == nil {
		t.Error("unknown -algorithm accepted")
	}
}

// TestWorkloadFlag covers the flag plumbing: the dregular alias
// reproduces the uniform row, misuse is rejected up front, and
// unbuildable specs fail with a clear error.
func TestWorkloadFlag(t *testing.T) {
	uni := goldenRun(t, "-samples", "1", "-seed", "7", "-dim", "4", "-workload", "uniform:4:1024", "workloads")
	ali := goldenRun(t, "-samples", "1", "-seed", "7", "-dim", "4", "-workload", "dregular:4:1024", "workloads")
	// The alias is the same generator under the same stream key; only
	// the canonical label is printed.
	if ali != uni {
		t.Errorf("-workload dregular:4:1024 differs from uniform:4:1024:\n--- uniform\n%s--- dregular\n%s", uni, ali)
	}
	if !strings.Contains(uni, "uniform:4:1024") {
		t.Errorf("workload table missing the canonical spec label:\n%s", uni)
	}

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dim", "4", "-workload", "perm:64", "table1"}, &stdout, &stderr); err == nil {
		t.Error("-workload with a classic target accepted")
	}
	if err := run([]string{"-dim", "4", "workloads"}, &stdout, &stderr); err == nil {
		t.Error("workloads target without -workload accepted")
	}
	if err := run([]string{"-dim", "4", "-workload", "klein:4", "workloads"}, &stdout, &stderr); err == nil {
		t.Error("bad workload spec accepted")
	}
	if err := run([]string{"-dim", "3", "-workload", "transpose:64", "workloads"}, &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "square") {
		t.Errorf("transpose on a non-square machine: err = %v, want a square-machine explanation", err)
	}
}
