package main

// The auto targets: calibration and evaluation of the portfolio
// meta-scheduler behind algorithm "auto".
//
//   - autoeval measures the standard calibration grid, trains a quality
//     model on the measurements, and prints a table comparing auto's
//     per-cell pick against every fixed algorithm — the CLI face of the
//     acceptance criterion (auto's mean completion time must not lose
//     to the best fixed algorithm, at a scheduling cost no worse than
//     RS_NL's).
//   - autofallback runs the same grid and prints the calibrated bin
//     rankings as a Go map literal, the source of the committed
//     fallback table in internal/quality/fallback.go.
//
// Both are deterministic and parallel-invariant: records arrive from
// the runner's single-goroutine aggregation pass in point order, and
// every ranking sorts ties lexicographically.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"unsched/internal/expt"
	"unsched/internal/quality"
	"unsched/internal/sched"
	"unsched/internal/workload"
)

// outcomeRecord converts one aggregated campaign outcome into the
// quality store's record form.
func outcomeRecord(workloadSpec string, samples int, o sched.Outcome) quality.Record {
	return quality.Record{
		Topology: o.TopoName, Workload: workloadSpec, Algorithm: o.Algorithm,
		Nodes: o.Nodes, Density: o.Density, SizeCV: o.SizeCV,
		Phases: float64(o.Phases), EstCommUS: o.EstCommUS,
		SchedCostNS: o.SchedCostNS, Samples: samples,
	}
}

// calibrationGrid is the standard grid both auto targets measure: the
// Table 1 densities that exist on the machine crossed with the Table 1
// sizes, as uniform workload specs.
func calibrationGrid(r *expt.Runner) []workload.Spec {
	densities := expt.DensitiesFor(expt.Table1Densities, r.Config.Topology.Nodes())
	return expt.UniformSpecs(densities, expt.Table1Sizes)
}

// measureCalibration runs the grid with the Outcomes sink attached,
// returning the per-point cells and the calibration records. When a
// -quality-db store is open, every record is appended there too. The
// runner is copied so the caller's sink configuration is untouched.
func measureCalibration(r *expt.Runner, store *quality.Store) ([]workload.Spec, []map[expt.Algorithm]expt.Cell, []quality.Record, error) {
	specs := calibrationGrid(r)
	var recs []quality.Record
	run := *r
	run.Config.Outcomes = func(w string, samples int, o sched.Outcome) {
		rec := outcomeRecord(w, samples, o)
		recs = append(recs, rec)
		if store != nil {
			_ = store.Append(rec)
		}
	}
	cells, err := run.MeasureWorkloads(context.Background(), specs)
	if err != nil {
		return nil, nil, nil, err
	}
	return specs, cells, recs, nil
}

// runAutoEval trains a model on the grid it just measured and prints
// auto's per-cell choice and cost against every fixed algorithm.
// baseline "auto" evaluates the model's pick; a concrete tag instead
// evaluates the always-that-tag policy (a sanity baseline).
func runAutoEval(r *expt.Runner, stdout io.Writer, baseline string, store *quality.Store) error {
	cfg := r.Config
	fmt.Fprintf(stdout, "Auto evaluation: %d-node machine (%s), %d samples per cell, seed %d (totals comm+sched, ms)\n",
		cfg.Topology.Nodes(), cfg.Topology.Name(), cfg.Samples, cfg.Seed)
	specs, cells, recs, err := measureCalibration(r, store)
	if err != nil {
		return err
	}
	model := quality.NewModel(recs)
	featFor := make(map[string]sched.Features, len(specs))
	for _, rec := range recs {
		featFor[rec.Workload] = sched.Features{Nodes: rec.Nodes, Density: rec.Density, SizeCV: rec.SizeCV}
	}

	total := func(c expt.Cell) float64 { return c.CommMS + c.CompMS }
	fmt.Fprintf(stdout, "%-18s %9s %9s %9s %9s  | %9s  %s\n",
		"workload", "AC", "LP", "RS_N", "RS_NL", "auto", "chosen")
	sums := map[expt.Algorithm]float64{}
	commSums := map[expt.Algorithm]float64{}
	scheds := map[expt.Algorithm][]float64{}
	var autoSum, autoCommSum float64
	var autoScheds []float64
	for i, sp := range specs {
		byAlg := cells[i]
		chosen := baseline
		if chosen == "auto" {
			chosen = model.Pick(cfg.Topology.Name(), featFor[sp.String()])[0]
		}
		pick := byAlg[expt.Algorithm(chosen)]
		fmt.Fprintf(stdout, "%-18s %9.3f %9.3f %9.3f %9.3f  | %9.3f  %s\n",
			sp.String(),
			total(byAlg[expt.AC]), total(byAlg[expt.LP]),
			total(byAlg[expt.RSN]), total(byAlg[expt.RSNL]),
			total(pick), chosen)
		for _, alg := range expt.Algorithms {
			sums[alg] += total(byAlg[alg])
			commSums[alg] += byAlg[alg].CommMS
			scheds[alg] = append(scheds[alg], byAlg[alg].CompMS)
		}
		autoSum += total(pick)
		autoCommSum += pick.CommMS
		autoScheds = append(autoScheds, pick.CompMS)
	}

	n := float64(len(specs))
	fmt.Fprintf(stdout, "%-18s %9.3f %9.3f %9.3f %9.3f  | %9.3f\n", "mean total",
		sums[expt.AC]/n, sums[expt.LP]/n, sums[expt.RSN]/n, sums[expt.RSNL]/n, autoSum/n)
	fmt.Fprintf(stdout, "%-18s %9.3f %9.3f %9.3f %9.3f  | %9.3f\n", "mean comm",
		commSums[expt.AC]/n, commSums[expt.LP]/n, commSums[expt.RSN]/n, commSums[expt.RSNL]/n, autoCommSum/n)
	fmt.Fprintf(stdout, "%-18s %9.3f %9.3f %9.3f %9.3f  | %9.3f\n", "p50 sched",
		median(scheds[expt.AC]), median(scheds[expt.LP]), median(scheds[expt.RSN]), median(scheds[expt.RSNL]),
		median(autoScheds))

	bestAlg, bestMean := expt.Algorithms[0], commSums[expt.Algorithms[0]]/n
	for _, alg := range expt.Algorithms[1:] {
		if mean := commSums[alg] / n; mean < bestMean {
			bestAlg, bestMean = alg, mean
		}
	}
	fmt.Fprintf(stdout, "auto mean comm %.3f ms vs best fixed (%s %.3f ms): %.2fx\n",
		autoCommSum/n, bestAlg, bestMean, (autoCommSum/n)/bestMean)
	fmt.Fprintf(stdout, "auto p50 sched %.3f ms vs RS_NL %.3f ms\n",
		median(autoScheds), median(scheds[expt.RSNL]))
	return nil
}

// median returns the lower median — deterministic for even counts —
// without mutating its argument.
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return sorted[(len(sorted)-1)/2]
}

// runAutoFallback prints the calibrated bin rankings as the Go map
// literal committed in internal/quality/fallback.go.
func runAutoFallback(r *expt.Runner, stdout io.Writer, store *quality.Store) error {
	cfg := r.Config
	_, _, recs, err := measureCalibration(r, store)
	if err != nil {
		return err
	}
	bins := quality.NewModel(recs).BinRankings()
	keys := make([]string, 0, len(bins))
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(stdout, "// Calibrated on %s: %d samples per cell, seed %d.\n",
		cfg.Topology.Name(), cfg.Samples, cfg.Seed)
	fmt.Fprintln(stdout, "var fallbackTable = map[string][]string{")
	for _, k := range keys {
		fmt.Fprintf(stdout, "\t%q: {%s},\n", k, `"`+strings.Join(bins[k], `", "`)+`"`)
	}
	fmt.Fprintln(stdout, "}")
	return nil
}
