// Command experiments regenerates the paper's evaluation: Table 1 and
// Figures 5-11 of Wang & Ranka, "Scheduling of Unstructured
// Communication on the Intel iPSC/860" (SC 1994), measured on the
// repository's machine simulator.
//
// Usage:
//
//	experiments [flags] <table1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|all>
//
// Flags:
//
//	-samples N   random samples per (d, M) cell (default 10; paper: 50)
//	-seed S      master seed (default 1994)
//	-csv         emit figures as CSV instead of ASCII charts
//	-dim D       hypercube dimension (default 6, the 64-node machine)
//	-parallel P  worker goroutines (default 0 = GOMAXPROCS)
//	-progress    report campaign progress on stderr
//
// Output is bit-identical at every -parallel value: each simulated run
// derives its randomness from (seed, density, size, sample, algorithm)
// alone, never from worker scheduling.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"unsched/internal/expt"
	"unsched/internal/hypercube"
	"unsched/internal/plot"
)

func main() {
	samples := flag.Int("samples", 10, "random samples per (d, M) cell; the paper uses 50")
	seed := flag.Int64("seed", 1994, "master seed")
	csv := flag.Bool("csv", false, "emit figure data as CSV instead of ASCII charts")
	dim := flag.Int("dim", 6, "hypercube dimension (6 = the paper's 64-node machine)")
	parallel := flag.Int("parallel", 0, "worker goroutines; 0 means GOMAXPROCS")
	progress := flag.Bool("progress", false, "report campaign progress on stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <table1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|all>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cube, err := hypercube.New(*dim)
	if err != nil {
		fatal(err)
	}
	cfg := expt.DefaultConfig()
	cfg.Cube = cube
	cfg.Samples = *samples
	cfg.Seed = *seed

	runner := &expt.Runner{Config: cfg, Parallelism: *parallel}
	if *progress {
		runner.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d units", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	targets := map[string]func(*expt.Runner, bool) error{
		"table1": runTable1,
		"fig5":   runFig5,
		"fig6":   figComm(4),
		"fig7":   figComm(8),
		"fig8":   figComm(16),
		"fig9":   figComm(32),
		"fig10":  figOverhead(expt.RSN, "Figure 10: computation overhead of RS_N (comp/comm)"),
		"fig11":  figOverhead(expt.RSNL, "Figure 11: computation overhead of RS_NL (comp/comm)"),
	}

	name := flag.Arg(0)
	if name == "all" {
		for _, key := range []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
			fmt.Printf("==== %s ====\n", key)
			if err := targets[key](runner, *csv); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := targets[name]
	if !ok {
		fatal(fmt.Errorf("unknown target %q", name))
	}
	if err := run(runner, *csv); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func runTable1(r *expt.Runner, _ bool) error {
	cfg := r.Config
	fmt.Printf("Table 1: %d-node machine, %d samples per cell, seed %d (timings in ms)\n",
		cfg.Cube.Nodes(), cfg.Samples, cfg.Seed)
	rows, err := r.Table1(context.Background())
	if err != nil {
		return err
	}
	return expt.WriteTable1(os.Stdout, rows)
}

func runFig5(r *expt.Runner, _ bool) error {
	fmt.Println("Figure 5: winning algorithm per (density, message size), comm cost only")
	var sizes []int64
	for b := int64(64); b <= 64*1024; b *= 4 {
		sizes = append(sizes, b)
	}
	regions, err := r.RegionMap(context.Background(), []int{4, 8, 16, 32, 48}, sizes)
	if err != nil {
		return err
	}
	return expt.WriteRegionMap(os.Stdout, regions)
}

func figComm(d int) func(*expt.Runner, bool) error {
	return func(r *expt.Runner, csv bool) error {
		series, err := r.CommVsSize(context.Background(), d, expt.FigureSizes())
		if err != nil {
			return err
		}
		if csv {
			return plot.WriteCSV(os.Stdout, series)
		}
		fmt.Print(plot.ASCII(series, plot.Options{
			Title:  fmt.Sprintf("Communication cost, uniform messages, d = %d, %d nodes", d, r.Config.Cube.Nodes()),
			LogX:   true,
			XLabel: "message bytes",
			YLabel: "time (ms)",
		}))
		return nil
	}
}

func figOverhead(alg expt.Algorithm, title string) func(*expt.Runner, bool) error {
	return func(r *expt.Runner, csv bool) error {
		series, err := r.OverheadVsSize(context.Background(), alg, []int{4, 8, 16, 32, 48}, expt.FigureSizes())
		if err != nil {
			return err
		}
		if csv {
			return plot.WriteCSV(os.Stdout, series)
		}
		fmt.Print(plot.ASCII(series, plot.Options{
			Title:  title,
			LogX:   true,
			XLabel: "message bytes",
			YLabel: "comp/comm fraction",
		}))
		return nil
	}
}
