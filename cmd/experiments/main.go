// Command experiments regenerates the paper's evaluation: Table 1 and
// Figures 5-11 of Wang & Ranka, "Scheduling of Unstructured
// Communication on the Intel iPSC/860" (SC 1994), measured on the
// repository's machine simulator.
//
// Usage:
//
//	experiments [flags] <table1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|workloads|autoeval|autofallback|all>
//
// Flags:
//
//	-samples N      random samples per grid cell (default 10; paper: 50)
//	-seed S         master seed (default 1994)
//	-csv            emit figures as CSV instead of ASCII charts
//	-dim D          hypercube dimension (default 6, the 64-node machine)
//	-topo SPEC      run on any topology instead: cube:D, mesh:WxH,
//	                torus:WxH, ring:N, or graph:N:a-b,c-d,... (exclusive
//	                with -dim)
//	-workload SPECS comma-separated workload specs for the workloads
//	                target (uniform:D:BYTES, hotspot:D:BYTES:HOT,
//	                halo:WxH:BYTES, spmv:NNZ:BYTES, perm:BYTES,
//	                transpose:BYTES, shift:K:BYTES, stencil3d:XxYxZ:BYTES,
//	                bitcomp:BYTES, alltoall:BYTES)
//	-algorithm A    policy autoeval evaluates: auto (default) or a
//	                fixed tag (AC, LP, RS_N, RS_NL)
//	-quality-db F   append the auto targets' calibration records to
//	                the quality store file F
//	-parallel P     worker goroutines (default 0 = GOMAXPROCS)
//	-progress       report campaign progress on stderr
//	-cpuprofile F   write a pprof CPU profile of the run to F
//	-memprofile F   write a pprof heap profile (after the run) to F
//
// The classic targets sweep the paper's uniform workload; the
// `workloads` target measures each -workload spec as one cell of a
// workload-generic campaign on the same machine. The `autoeval`
// target measures the calibration grid, trains the algorithm-"auto"
// quality model on it, and compares auto's pick against every fixed
// algorithm; `autofallback` prints the calibrated bin rankings as the
// Go literal committed in internal/quality/fallback.go.
//
// Output is bit-identical at every -parallel value on every topology:
// each simulated run derives its randomness from (seed, density,
// size, sample, algorithm) alone, never from worker scheduling or
// topology internals. On machines smaller than the paper's 64-node
// cube, density rows that cannot exist there (d >= nodes) are dropped
// from the grids, and figures pinned to such a density fail cleanly.
//
// The `all` target runs every table and figure in order and stops at
// the first failure with a non-zero exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"unsched/internal/expt"
	"unsched/internal/hypercube"
	"unsched/internal/plot"
	"unsched/internal/quality"
	"unsched/internal/topo"
	"unsched/internal/workload"
)

// allTargets is the canonical target order of the `all` run — the
// order the paper presents them in.
var allTargets = []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: parse args, build
// the runner, execute the requested targets against stdout. Any error
// becomes a non-zero exit in main.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	samples := fs.Int("samples", 10, "random samples per (d, M) cell; the paper uses 50")
	seed := fs.Int64("seed", 1994, "master seed")
	csv := fs.Bool("csv", false, "emit figure data as CSV instead of ASCII charts")
	dim := fs.Int("dim", 6, "hypercube dimension (6 = the paper's 64-node machine)")
	topoSpec := fs.String("topo", "", "topology spec (cube:D, mesh:WxH, torus:WxH, ring:N, graph:N:a-b,...); exclusive with -dim")
	workloads := fs.String("workload", "", "comma-separated workload specs for the workloads target (uniform:D:BYTES, halo:WxH:BYTES, ...)")
	algorithm := fs.String("algorithm", "auto", "policy the autoeval target evaluates: auto (the calibrated pick) or a fixed tag (AC, LP, RS_N, RS_NL)")
	qualityDB := fs.String("quality-db", "", "append the auto targets' calibration records to this quality store file")
	parallel := fs.Int("parallel", 0, "worker goroutines; 0 means GOMAXPROCS")
	progress := fs.Bool("progress", false, "report campaign progress on stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	if err := fs.Parse(args); err != nil {
		// The FlagSet already reported the problem (plus usage) on
		// stderr; returning ErrHelp exits 2 without printing it twice.
		return flag.ErrHelp
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: experiments [flags] <table1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|workloads|all>")
		fs.PrintDefaults()
		return fmt.Errorf("expected exactly one target, got %d", fs.NArg())
	}
	if *workloads != "" && fs.Arg(0) != "workloads" {
		return fmt.Errorf("-workload applies only to the workloads target (the classic grids sweep the paper's uniform workload)")
	}
	autoTarget := fs.Arg(0) == "autoeval" || fs.Arg(0) == "autofallback"
	if *qualityDB != "" && !autoTarget {
		return fmt.Errorf("-quality-db applies only to the autoeval and autofallback targets")
	}
	switch *algorithm {
	case "auto", "AC", "LP", "RS_N", "RS_NL":
	default:
		return fmt.Errorf("unknown -algorithm %q (want auto, AC, LP, RS_N, or RS_NL)", *algorithm)
	}

	// Profiling brackets everything the command measures — topology
	// build, campaign, rendering — which is exactly the production
	// shape the simulator hot path is tuned against.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "experiments: -memprofile:", err)
				return
			}
			defer f.Close()
			// The heap profile reports live objects as of the last GC;
			// collect first so the snapshot reflects the run's retained
			// state, not transient garbage.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "experiments: -memprofile:", err)
			}
		}()
	}

	net, err := resolveNet(fs, *topoSpec, *dim)
	if err != nil {
		return err
	}
	if n := net.Nodes(); n&(n-1) != 0 {
		// Every target compares the paper's four contenders, and LP's
		// XOR pairing exists only on power-of-two machines.
		return fmt.Errorf("the experiment grids include LP, which needs a power-of-two node count; %s has %d nodes", net.Name(), n)
	}
	cfg := expt.DefaultConfig()
	cfg.Topology = net
	cfg.Samples = *samples
	cfg.Seed = *seed

	runner := &expt.Runner{Config: cfg, Parallelism: *parallel}
	if *progress {
		runner.Progress = progressPrinter(stderr)
	}

	var qstore *quality.Store
	if *qualityDB != "" {
		qstore, err = quality.Open(*qualityDB)
		if err != nil {
			return fmt.Errorf("-quality-db: %w", err)
		}
		defer qstore.Close()
	}

	targets := map[string]func(*expt.Runner, io.Writer, bool) error{
		"table1": runTable1,
		"fig5":   runFig5,
		"fig6":   figComm(4),
		"fig7":   figComm(8),
		"fig8":   figComm(16),
		"fig9":   figComm(32),
		"fig10":  figOverhead(expt.RSN, "Figure 10: computation overhead of RS_N (comp/comm)"),
		"fig11":  figOverhead(expt.RSNL, "Figure 11: computation overhead of RS_NL (comp/comm)"),
		"workloads": func(r *expt.Runner, stdout io.Writer, _ bool) error {
			return runWorkloads(r, stdout, *workloads)
		},
		"autoeval": func(r *expt.Runner, stdout io.Writer, _ bool) error {
			return runAutoEval(r, stdout, *algorithm, qstore)
		},
		"autofallback": func(r *expt.Runner, stdout io.Writer, _ bool) error {
			return runAutoFallback(r, stdout, qstore)
		},
	}

	name := fs.Arg(0)
	if name == "all" {
		for _, key := range allTargets {
			fmt.Fprintf(stdout, "==== %s ====\n", key)
			if err := targets[key](runner, stdout, *csv); err != nil {
				return fmt.Errorf("target %s: %w", key, err)
			}
			fmt.Fprintln(stdout)
		}
		return nil
	}
	runTarget, ok := targets[name]
	if !ok {
		return fmt.Errorf("unknown target %q", name)
	}
	if err := runTarget(runner, stdout, *csv); err != nil {
		return fmt.Errorf("target %s: %w", name, err)
	}
	return nil
}

// resolveNet builds the campaign's machine from -topo (any spec the
// topo package parses) or -dim (a hypercube, the historical flag).
// Setting both explicitly is ambiguous and rejected.
func resolveNet(fs *flag.FlagSet, topoSpec string, dim int) (topo.Topology, error) {
	dimSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "dim" {
			dimSet = true
		}
	})
	if topoSpec != "" {
		if dimSet {
			return nil, fmt.Errorf("-topo and -dim are mutually exclusive; say -topo cube:%d", dim)
		}
		sp, err := topo.ParseSpec(topoSpec)
		if err != nil {
			return nil, err
		}
		return sp.Build()
	}
	return hypercube.New(dim)
}

// progressPrinter adapts campaign progress to the writer: a terminal
// gets the carriage-return ticker, anything else (a CI log, a pipe, a
// file) gets clean newline-terminated lines at ~10% steps so the log
// is neither control-character soup nor one line per unit.
func progressPrinter(w io.Writer) func(done, total int) {
	if isTerminal(w) {
		return func(done, total int) {
			fmt.Fprintf(w, "\r%d/%d units", done, total)
			if done == total {
				fmt.Fprintln(w)
			}
		}
	}
	lastDecile := -1
	return func(done, total int) {
		decile := 10
		if total > 0 {
			decile = done * 10 / total
		}
		// Progress calls are serialized by the runner, so plain closure
		// state is safe.
		if decile == lastDecile && done != total {
			return
		}
		lastDecile = decile
		fmt.Fprintf(w, "progress %d/%d units (%d%%)\n", done, total, decile*10)
	}
}

// isTerminal reports whether w is a character device — the only case
// where carriage-return animation renders as intended.
func isTerminal(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	info, err := f.Stat()
	return err == nil && info.Mode()&os.ModeCharDevice != 0
}

// runWorkloads measures each comma-separated workload spec as one
// cell of a workload-generic campaign and renders the comparison
// table. Every spec is parsed and checked against the machine before
// any measurement starts.
func runWorkloads(r *expt.Runner, stdout io.Writer, specList string) error {
	if specList == "" {
		return fmt.Errorf("the workloads target needs -workload SPEC[,SPEC...] (e.g. -workload halo:8x8:512,hotspot:8:4096:4)")
	}
	var specs []workload.Spec
	for _, s := range strings.Split(specList, ",") {
		sp, err := workload.ParseSpec(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		if err := sp.ValidateFor(r.Config.Topology.Nodes()); err != nil {
			return err
		}
		specs = append(specs, sp)
	}
	cfg := r.Config
	fmt.Fprintf(stdout, "Workload campaign: %d-node machine (%s), %d samples per cell, seed %d (timings in ms)\n",
		cfg.Topology.Nodes(), cfg.Topology.Name(), cfg.Samples, cfg.Seed)
	cells, err := r.MeasureWorkloads(context.Background(), specs)
	if err != nil {
		return err
	}
	return expt.WriteWorkloadTable(stdout, cells)
}

func runTable1(r *expt.Runner, stdout io.Writer, _ bool) error {
	cfg := r.Config
	fmt.Fprintf(stdout, "Table 1: %d-node machine, %d samples per cell, seed %d (timings in ms)\n",
		cfg.Topology.Nodes(), cfg.Samples, cfg.Seed)
	rows, err := r.Table1(context.Background())
	if err != nil {
		return err
	}
	return expt.WriteTable1(stdout, rows)
}

func runFig5(r *expt.Runner, stdout io.Writer, _ bool) error {
	fmt.Fprintln(stdout, "Figure 5: winning algorithm per (density, message size), comm cost only")
	var sizes []int64
	for b := int64(64); b <= 64*1024; b *= 4 {
		sizes = append(sizes, b)
	}
	densities := expt.DensitiesFor(expt.Table1Densities, r.Config.Topology.Nodes())
	regions, err := r.RegionMap(context.Background(), densities, sizes)
	if err != nil {
		return err
	}
	return expt.WriteRegionMap(stdout, regions)
}

func figComm(d int) func(*expt.Runner, io.Writer, bool) error {
	return func(r *expt.Runner, stdout io.Writer, csv bool) error {
		if nodes := r.Config.Topology.Nodes(); d >= nodes {
			return fmt.Errorf("density %d does not exist on a %d-node machine; raise -dim", d, nodes)
		}
		series, err := r.CommVsSize(context.Background(), d, expt.FigureSizes())
		if err != nil {
			return err
		}
		if csv {
			return plot.WriteCSV(stdout, series)
		}
		fmt.Fprint(stdout, plot.ASCII(series, plot.Options{
			Title:  fmt.Sprintf("Communication cost, uniform messages, d = %d, %d nodes", d, r.Config.Topology.Nodes()),
			LogX:   true,
			XLabel: "message bytes",
			YLabel: "time (ms)",
		}))
		return nil
	}
}

func figOverhead(alg expt.Algorithm, title string) func(*expt.Runner, io.Writer, bool) error {
	return func(r *expt.Runner, stdout io.Writer, csv bool) error {
		densities := expt.DensitiesFor(expt.Table1Densities, r.Config.Topology.Nodes())
		series, err := r.OverheadVsSize(context.Background(), alg, densities, expt.FigureSizes())
		if err != nil {
			return err
		}
		if csv {
			return plot.WriteCSV(stdout, series)
		}
		fmt.Fprint(stdout, plot.ASCII(series, plot.Options{
			Title:  title,
			LogX:   true,
			XLabel: "message bytes",
			YLabel: "comp/comm fraction",
		}))
		return nil
	}
}
