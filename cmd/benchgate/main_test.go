package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: unsched
cpu: some CPU
BenchmarkCampaignSequential-8   	       1	311093322 ns/op	         1.000 workers
BenchmarkCampaignParallel-16    	       2	 41817386 ns/op	         8.000 workers
BenchmarkSimulatorRSNL-8        	     100	    305929 ns/op	   28634 B/op	     170 allocs/op
BenchmarkSimulatorRSNLReused-8  	     120	    289101 ns/op	    1201 B/op	      14 allocs/op
PASS
ok  	unsched	3.210s
`

func TestParseBenchOutput(t *testing.T) {
	report, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(report.Benchmarks), report.Benchmarks)
	}
	// The -8 / -16 GOMAXPROCS suffixes must be stripped.
	sim, ok := report.Benchmarks["BenchmarkSimulatorRSNL"]
	if !ok {
		t.Fatal("BenchmarkSimulatorRSNL missing (suffix not stripped?)")
	}
	if sim.NsPerOp != 305929 || sim.AllocsPerOp != 170 || sim.BytesPerOp != 28634 {
		t.Errorf("SimulatorRSNL metrics wrong: %+v", sim)
	}
	if seq := report.Benchmarks["BenchmarkCampaignSequential"]; seq.NsPerOp != 311093322 {
		t.Errorf("CampaignSequential ns/op = %v", seq.NsPerOp)
	}
}

func report(ns, allocs float64) *Report {
	return &Report{Benchmarks: map[string]Metrics{
		"BenchmarkSimulatorRSNL": {NsPerOp: ns, AllocsPerOp: allocs},
	}}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	// +20% is inside the 25% budget.
	_, failures := compare(report(1000, 100), report(1200, 100), 0.25, nil, 0.10)
	if failures != 0 {
		t.Errorf("20%% slowdown failed the 25%% gate")
	}
	// Improvements never fail.
	if _, failures := compare(report(1000, 100), report(10, 1), 0.25, nil, 0.10); failures != 0 {
		t.Errorf("improvement failed the gate")
	}
}

func TestGateFailsOnSyntheticRegression(t *testing.T) {
	// The synthetic >25% regression the CI gate must catch: +30% ns/op.
	lines, failures := compare(report(1000, 100), report(1300, 100), 0.25, nil, 0.10)
	if failures != 1 {
		t.Fatalf("30%% slowdown: %d failures, want 1\n%s", failures, strings.Join(lines, "\n"))
	}
	// Alloc regressions are gated too.
	if _, failures := compare(report(1000, 100), report(1000, 200), 0.25, nil, 0.10); failures != 1 {
		t.Error("alloc doubling passed the gate")
	}
	// A missing tracked benchmark is a failure, not a skip.
	empty := &Report{Benchmarks: map[string]Metrics{}}
	if _, failures := compare(report(1000, 100), empty, 0.25, nil, 0.10); failures != 1 {
		t.Error("missing tracked benchmark passed the gate")
	}
	// A tracked metric dropping to zero (benchmark ran without
	// -benchmem) is a failure, not a -100% improvement.
	if _, failures := compare(report(1000, 100), report(1000, 0), 0.25, nil, 0.10); failures != 1 {
		t.Error("vanished allocs/op metric passed the gate")
	}
}

func TestStrictAllocsGate(t *testing.T) {
	strict := regexp.MustCompile(`BenchmarkSimulator`)
	// +18% allocs/op: inside the default 25% budget, outside the 10%
	// strict budget — the strict regexp must flip it to a failure.
	if _, failures := compare(report(1000, 100), report(1000, 118), 0.25, nil, 0.10); failures != 0 {
		t.Error("18% alloc growth failed the default gate")
	}
	lines, failures := compare(report(1000, 100), report(1000, 118), 0.25, strict, 0.10)
	if failures != 1 {
		t.Fatalf("18%% alloc growth passed the strict gate:\n%s", strings.Join(lines, "\n"))
	}
	// ns/op keeps the noise-tolerant default even under strict allocs.
	if _, failures := compare(report(1000, 100), report(1180, 100), 0.25, strict, 0.10); failures != 0 {
		t.Error("18% slowdown failed under -strict-allocs (ns/op must keep the default threshold)")
	}
	// Non-matching benchmarks keep the default allocs threshold.
	loose := regexp.MustCompile(`BenchmarkCampaign`)
	if _, failures := compare(report(1000, 100), report(1000, 118), 0.25, loose, 0.10); failures != 0 {
		t.Error("strict regexp gated a non-matching benchmark")
	}
}

func TestStrictAllocsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	benchTxt := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchTxt, []byte(sampleBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	prJSON := filepath.Join(dir, "BENCH_PR.json")
	var out bytes.Buffer
	if err := run([]string{"-parse", benchTxt, "-out", prJSON}, &out); err != nil {
		t.Fatalf("parse mode: %v", err)
	}
	// Baseline with 15% fewer simulator allocs than the current run:
	// passes the default gate, fails the 10% strict gate.
	baseline := &Report{Benchmarks: map[string]Metrics{
		"BenchmarkSimulatorRSNL": {NsPerOp: 305929, AllocsPerOp: 170 / 1.15},
	}}
	baseJSON := filepath.Join(dir, "BENCH_baseline.json")
	raw, _ := json.Marshal(baseline)
	if err := os.WriteFile(baseJSON, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-baseline", baseJSON, "-current", prJSON}, &out); err != nil {
		t.Fatalf("default gate failed a 15%% alloc growth: %v\n%s", err, out.String())
	}
	out.Reset()
	err := run([]string{"-baseline", baseJSON, "-current", prJSON,
		"-strict-allocs", "BenchmarkSimulator", "-strict-allocs-threshold", "0.10"}, &out)
	if err == nil {
		t.Fatalf("strict gate passed a 15%% alloc growth:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkSimulatorRSNL allocs/op") {
		t.Errorf("strict gate output does not name the alloc regression:\n%s", out.String())
	}
	// A bad regexp is a usage error, not a pass.
	if err := run([]string{"-baseline", baseJSON, "-current", prJSON, "-strict-allocs", "("}, &out); err == nil {
		t.Error("invalid -strict-allocs regexp accepted")
	}
}

func TestGateIgnoresUntrackedNewBenchmarks(t *testing.T) {
	current := report(1000, 100)
	current.Benchmarks["BenchmarkBrandNew"] = Metrics{NsPerOp: 1}
	lines, failures := compare(report(1000, 100), current, 0.25, nil, 0.10)
	if failures != 0 {
		t.Errorf("new benchmark caused failures:\n%s", strings.Join(lines, "\n"))
	}
}

// TestEndToEnd drives the CLI exactly as the CI workflow does: parse a
// bench log, write the report, gate it against a baseline with one
// synthetic >25% regression, and expect a non-zero outcome.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	benchTxt := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchTxt, []byte(sampleBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	prJSON := filepath.Join(dir, "BENCH_PR.json")
	var out bytes.Buffer
	if err := run([]string{"-parse", benchTxt, "-out", prJSON}, &out); err != nil {
		t.Fatalf("parse mode: %v", err)
	}

	// Baseline claiming the simulator used to be 30% faster.
	baseline := &Report{Benchmarks: map[string]Metrics{
		"BenchmarkSimulatorRSNL": {NsPerOp: 305929 / 1.3, AllocsPerOp: 170},
	}}
	baseJSON := filepath.Join(dir, "BENCH_baseline.json")
	raw, _ := json.Marshal(baseline)
	if err := os.WriteFile(baseJSON, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err := run([]string{"-baseline", baseJSON, "-current", prJSON}, &out)
	if err == nil {
		t.Fatalf("synthetic regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkSimulatorRSNL ns/op") {
		t.Errorf("gate output does not name the regression:\n%s", out.String())
	}

	// With an honest baseline the same report passes.
	honest, _ := json.Marshal(&Report{Benchmarks: map[string]Metrics{
		"BenchmarkSimulatorRSNL": {NsPerOp: 305929, AllocsPerOp: 170},
	}})
	if err := os.WriteFile(baseJSON, honest, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-baseline", baseJSON, "-current", prJSON}, &out); err != nil {
		t.Fatalf("honest baseline failed: %v\n%s", err, out.String())
	}
}

func TestRunNeedsAMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no-mode invocation succeeded")
	}
}

func TestMarkdownTable(t *testing.T) {
	baseline := report(1000, 100)
	current := report(1300, 100) // +30% ns/op: over the 25% threshold
	current.Benchmarks["BenchmarkBrandNew"] = Metrics{NsPerOp: 42, AllocsPerOp: 7}
	baseline.Benchmarks["BenchmarkGone"] = Metrics{NsPerOp: 5, AllocsPerOp: 1}

	doc := renderMarkdown(baseline, current, 0.25)
	for _, want := range []string{
		"| benchmark |",
		"❌ regressed",       // the tracked +30% row
		"+30.0%",            // its delta
		"🆕 untracked",       // BenchmarkBrandNew
		"❌ missing from PR", // BenchmarkGone
		"1000 → 1300",       // before/after cell
		"threshold +25%",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("markdown table missing %q:\n%s", want, doc)
		}
	}
}

func TestMarkdownWithinThreshold(t *testing.T) {
	doc := renderMarkdown(report(1000, 100), report(1100, 100), 0.25)
	if !strings.Contains(doc, "✅ ok") || strings.Contains(doc, "❌") {
		t.Errorf("+10%% run should be all-ok:\n%s", doc)
	}
}

// TestMarkdownModeNeverFails checks the CLI contract the CI summary
// step relies on: rendering exits 0 even over a gate-failing
// regression, appends to an existing summary file, and the same
// inputs still fail the plain gate mode.
func TestMarkdownModeNeverFails(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r *Report) string {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", report(1000, 100))
	cur := write("cur.json", report(2000, 100)) // 2x regression
	summary := filepath.Join(dir, "summary.md")
	if err := os.WriteFile(summary, []byte("# earlier step\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-markdown", summary}, &out); err != nil {
		t.Fatalf("markdown mode failed on a regression: %v", err)
	}
	got, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(got), "# earlier step\n") {
		t.Error("markdown mode truncated the existing step summary")
	}
	if !strings.Contains(string(got), "❌ regressed") {
		t.Errorf("summary missing the regression row:\n%s", got)
	}

	// stdout form
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", cur, "-markdown", "-"}, &out); err != nil {
		t.Fatalf("markdown to stdout failed: %v", err)
	}
	if !strings.Contains(out.String(), "| benchmark |") {
		t.Error("stdout markdown missing table header")
	}

	// The identical comparison must still fail in gate mode.
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Error("gate mode passed a 2x regression")
	}
}
