// Command benchgate turns `go test -bench` output into a stable JSON
// report and gates benchmark regressions against a committed baseline.
// It is the -json mode of the CI bench smoke plus the regression gate
// built on top of it.
//
// Emit a report (BENCH_PR.json) from a bench run:
//
//	go test -run xxx -bench 'Campaign|Simulator' -benchmem -benchtime 2x ./... | tee bench.txt
//	benchgate -parse bench.txt -out BENCH_PR.json
//
// Gate a report against the committed baseline, failing (exit 1) when
// any tracked benchmark regresses more than -threshold (default 0.25,
// i.e. 25%) in ns/op or allocs/op:
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_PR.json
//
// A subset of benchmarks can be held to a tighter allocs/op bar than
// the noise-tolerant default: -strict-allocs takes a regexp and
// -strict-allocs-threshold the allowed fraction (default 0.10).
// allocs/op is deterministic — there is no runner noise to forgive —
// so the simulator hot-path benchmarks are gated at 10% while ns/op
// keeps the machine-dependent 25%:
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_PR.json \
//	    -strict-allocs 'BenchmarkSimulator' -strict-allocs-threshold 0.10
//
// Benchmarks present in the baseline but missing from the current
// report fail the gate: silently dropping a tracked benchmark is how
// regressions hide. New benchmarks in the current report are reported
// but do not fail; commit a refreshed baseline to start tracking them.
//
// Render the same comparison as a GitHub-flavored markdown table (for
// the Actions step summary) instead of gating — this mode always
// exits 0, so the summary renders even when the separate gate step
// will fail ("-" writes to stdout, e.g. >> $GITHUB_STEP_SUMMARY):
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_PR.json -markdown -
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// Report is the JSON document benchgate reads and writes.
type Report struct {
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// Metrics are the gated quantities of one benchmark.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

func run(args []string, stdout io.Writer) error {
	var (
		parse        string
		out          string
		baseline     string
		current      string
		markdown     string
		threshold    float64
		strictAllocs string
		strictThresh float64
	)
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.StringVar(&parse, "parse", "", "parse `go test -bench` output from this file")
	fs.StringVar(&out, "out", "", "with -parse: write the JSON report here (default stdout)")
	fs.StringVar(&baseline, "baseline", "", "committed baseline report to gate against")
	fs.StringVar(&current, "current", "", "current report to gate")
	fs.StringVar(&markdown, "markdown", "", "with -baseline and -current: render a markdown before/after table to this file (\"-\" for stdout) instead of gating")
	fs.Float64Var(&threshold, "threshold", 0.25, "allowed fractional regression per metric")
	fs.StringVar(&strictAllocs, "strict-allocs", "", "regexp of benchmarks whose allocs/op are gated at -strict-allocs-threshold instead of -threshold")
	fs.Float64Var(&strictThresh, "strict-allocs-threshold", 0.10, "allowed fractional allocs/op regression for -strict-allocs benchmarks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var strictRe *regexp.Regexp
	if strictAllocs != "" {
		var err error
		if strictRe, err = regexp.Compile(strictAllocs); err != nil {
			return fmt.Errorf("-strict-allocs: %v", err)
		}
	}
	switch {
	case parse != "":
		return runParse(parse, out, stdout)
	case baseline != "" && current != "" && markdown != "":
		return runMarkdown(baseline, current, markdown, threshold, stdout)
	case baseline != "" && current != "":
		return runCompare(baseline, current, threshold, strictRe, strictThresh, stdout)
	default:
		fs.Usage()
		return fmt.Errorf("need either -parse, or -baseline with -current")
	}
}

func runParse(parse, out string, stdout io.Writer) error {
	f, err := os.Open(parse)
	if err != nil {
		return err
	}
	defer f.Close()
	report, err := parseBench(f)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("%s contains no benchmark result lines", parse)
	}
	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if out == "" {
		_, err = stdout.Write(doc)
		return err
	}
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d benchmarks to %s\n", len(report.Benchmarks), out)
	return nil
}

func runCompare(baselinePath, currentPath string, threshold float64, strictRe *regexp.Regexp, strictThresh float64, stdout io.Writer) error {
	baseline, err := readReport(baselinePath)
	if err != nil {
		return err
	}
	current, err := readReport(currentPath)
	if err != nil {
		return err
	}
	lines, failures := compare(baseline, current, threshold, strictRe, strictThresh)
	for _, l := range lines {
		fmt.Fprintln(stdout, l)
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed against %s", failures, baselinePath)
	}
	fmt.Fprintf(stdout, "gate passed: no benchmark regressed more than %.0f%%\n", threshold*100)
	return nil
}

// runMarkdown renders the baseline/current comparison as a GitHub-
// flavored markdown table. It never fails on regressions — the table
// is for the Actions step summary, and must render even (especially)
// when the separate gate invocation is about to fail the job.
func runMarkdown(baselinePath, currentPath, outPath string, threshold float64, stdout io.Writer) error {
	baseline, err := readReport(baselinePath)
	if err != nil {
		return err
	}
	current, err := readReport(currentPath)
	if err != nil {
		return err
	}
	doc := renderMarkdown(baseline, current, threshold)
	if outPath == "-" {
		_, err = io.WriteString(stdout, doc)
		return err
	}
	// Append rather than truncate: $GITHUB_STEP_SUMMARY accumulates
	// sections, and other steps may already have written theirs.
	f, err := os.OpenFile(outPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(f, doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// renderMarkdown builds the before/after table: one row per benchmark
// in either report, tracked rows flagged when they breach threshold.
func renderMarkdown(baseline, current *Report, threshold float64) string {
	names := make([]string, 0, len(baseline.Benchmarks)+len(current.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	for name := range current.Benchmarks {
		if _, ok := baseline.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "### Benchmark gate (threshold +%.0f%%)\n\n", threshold*100)
	b.WriteString("| benchmark | ns/op (base → PR) | Δ | allocs/op (base → PR) | Δ | status |\n")
	b.WriteString("|---|---:|---:|---:|---:|---|\n")
	for _, name := range names {
		base, inBase := baseline.Benchmarks[name]
		cur, inCur := current.Benchmarks[name]
		switch {
		case !inBase:
			fmt.Fprintf(&b, "| %s | — → %s | | — → %s | | 🆕 untracked |\n",
				name, fmtMetric(cur.NsPerOp), fmtMetric(cur.AllocsPerOp))
		case !inCur:
			fmt.Fprintf(&b, "| %s | %s → — | | %s → — | | ❌ missing from PR |\n",
				name, fmtMetric(base.NsPerOp), fmtMetric(base.AllocsPerOp))
		default:
			nsCell, nsDelta, nsOK := markdownMetric(base.NsPerOp, cur.NsPerOp, threshold)
			alCell, alDelta, alOK := markdownMetric(base.AllocsPerOp, cur.AllocsPerOp, threshold)
			status := "✅ ok"
			if !nsOK || !alOK {
				status = "❌ regressed"
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s |\n",
				name, nsCell, nsDelta, alCell, alDelta, status)
		}
	}
	b.WriteString("\n")
	return b.String()
}

// markdownMetric formats one before/after cell plus its delta, and
// reports whether the metric stays inside the gate (mirroring
// gateMetric: an untracked baseline passes, a vanished current metric
// fails).
func markdownMetric(base, cur, threshold float64) (cell, delta string, ok bool) {
	if base <= 0 {
		return fmt.Sprintf("— → %s", fmtMetric(cur)), "", true
	}
	if cur <= 0 {
		return fmt.Sprintf("%s → —", fmtMetric(base)), "", false
	}
	d := (cur - base) / base
	return fmt.Sprintf("%s → %s", fmtMetric(base), fmtMetric(cur)),
		fmt.Sprintf("%+.1f%%", d*100), d <= threshold
}

// fmtMetric renders a metric value compactly (benchmark ns/op values
// run to nine digits; full precision is noise in a summary table).
func fmtMetric(v float64) string {
	if v <= 0 {
		return "—"
	}
	return strconv.FormatFloat(v, 'g', 5, 64)
}

func readReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

// parseBench extracts benchmark result lines from `go test -bench`
// output. A result line looks like
//
//	BenchmarkSimulatorRSNL-8  100  305929 ns/op  28634 B/op  170 allocs/op  3.0 extra_metric
//
// The trailing "-8" GOMAXPROCS suffix is stripped so reports compare
// across machines with different core counts; custom b.ReportMetric
// units are ignored — the gate tracks time and allocation only.
func parseBench(r io.Reader) (*Report, error) {
	report := &Report{Benchmarks: map[string]Metrics{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count; not a result line
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := report.Benchmarks[name]
		for i := 2; i+1 < len(fields); i += 2 {
			value, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // metrics come in "value unit" pairs; stop at noise
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = value
			case "allocs/op":
				m.AllocsPerOp = value
			case "B/op":
				m.BytesPerOp = value
			}
		}
		if m.NsPerOp > 0 {
			report.Benchmarks[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// compare evaluates every baseline-tracked benchmark against the
// current report, returning human-readable lines and the number of
// gate failures. Benchmarks matching strictRe have their allocs/op
// gated at strictThresh instead of threshold: allocation counts are
// deterministic, so the hot-path set gets no noise allowance.
func compare(baseline, current *Report, threshold float64, strictRe *regexp.Regexp, strictThresh float64) (lines []string, failures int) {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current.Benchmarks[name]
		if !ok {
			failures++
			lines = append(lines, fmt.Sprintf("FAIL %s: tracked benchmark missing from current report", name))
			continue
		}
		allocThresh := threshold
		if strictRe != nil && strictRe.MatchString(name) {
			allocThresh = strictThresh
		}
		ok1, l1 := gateMetric(name, "ns/op", base.NsPerOp, cur.NsPerOp, threshold)
		ok2, l2 := gateMetric(name, "allocs/op", base.AllocsPerOp, cur.AllocsPerOp, allocThresh)
		if !ok1 {
			failures++
		}
		if !ok2 {
			failures++
		}
		lines = append(lines, l1, l2)
	}
	for name := range current.Benchmarks {
		if _, ok := baseline.Benchmarks[name]; !ok {
			lines = append(lines, fmt.Sprintf("note %s: not in baseline (commit a refreshed BENCH_baseline.json to track it)", name))
		}
	}
	return lines, failures
}

func gateMetric(name, unit string, base, cur, threshold float64) (bool, string) {
	if base <= 0 {
		return true, fmt.Sprintf("  ok %s %s: untracked (baseline %.4g)", name, unit, base)
	}
	// A tracked metric vanishing (e.g. -benchmem dropped from the CI
	// invocation zeroes every allocs/op) must fail like a missing
	// benchmark, not pass as a miraculous -100% improvement.
	if cur <= 0 {
		return false, fmt.Sprintf("FAIL %s %s: tracked metric missing from current report (baseline %.4g)",
			name, unit, base)
	}
	delta := (cur - base) / base
	if delta > threshold {
		return false, fmt.Sprintf("FAIL %s %s: %.4g -> %.4g (%+.1f%%, limit +%.0f%%)",
			name, unit, base, cur, delta*100, threshold*100)
	}
	return true, fmt.Sprintf("  ok %s %s: %.4g -> %.4g (%+.1f%%)", name, unit, base, cur, delta*100)
}
