// Command unschedd runs the scheduling-as-a-service daemon: the
// repository's schedulers, simulator, and campaign engine behind a
// long-running HTTP JSON API with a content-addressed schedule cache.
//
// Usage:
//
//	unschedd [-addr :8080] [-workers 0] [-queue 0] [-cache 4096]
//	         [-cache-dir DIR] [-quality-db FILE] [-campaigns 2]
//	         [-peers URL,URL,...] [-self URL] [-peer-budget 75ms]
//	         [-pprof-addr ADDR]
//
// Endpoints (see internal/service for the wire formats):
//
//	POST /v1/schedule        matrix in, schedule out (cached)
//	POST /v1/simulate        schedule in, predicted result out (cached)
//	POST /v1/schedule/batch  many schedule requests in, NDJSON stream out
//	POST /v1/campaign        async measurement grid; poll the returned id
//	GET  /v1/campaign/{id}   campaign progress / results
//	GET  /healthz            liveness
//	GET  /metrics            Prometheus-style counters
//
// Synchronous responses are negotiable: JSON by default, the compact
// binary envelope (application/x-unsched-binary) on Accept, gzip on
// Accept-Encoding — the binary+gzip form of a 1024-node schedule is
// over 10x smaller than its JSON. Every cacheable response carries
// its content hash as a strong ETag, so If-None-Match revalidation
// costs zero body bytes (304), and error bodies carry stable
// machine-readable codes in error_v2 next to the legacy message. The
// README's wire-format section documents the full contract; the
// unsched CLI's -server/-binary/-batch flags exercise it.
//
// The daemon sheds load with 429 when its bounded queue is full and
// shuts down gracefully on SIGINT/SIGTERM: in-flight requests finish,
// running campaigns are cancelled, then the process exits.
//
// With -cache-dir, the content-addressed schedule cache is persisted
// to disk (asynchronously; the request path never waits on fsync) and
// warm-restarted on boot: a restarted daemon serves previously
// computed responses byte-identically as cache hits instead of
// re-paying every O(n^2) schedule. Corrupt or truncated records are
// skipped and counted on /metrics, never fatal.
//
// With -peers (plus -self, this daemon's own URL from the list), N
// daemons form a fleet serving one logical cache: rendezvous hashing
// assigns every content-hash key an owner, a cache miss on a
// non-owned key asks the owner for its checksummed record (with a
// hedged second probe to the next-ranked peer) before computing, and
// locally computed non-owned records are pushed to their owner in the
// background. Peer lookups are budgeted (-peer-budget); any peer
// failure falls back to local compute, so a fleet can only make a
// daemon faster, never unavailable. The internal record endpoints
// (GET/PUT /v1/cache/{key}) should stay off the public edge, like
// /metrics. See the README's "Fleet mode" section.
//
// With -quality-db, schedule requests may say "algorithm": "auto": the
// daemon resolves the tag from a calibration model built over the
// store before any cache-key fingerprinting, and every finished
// campaign appends its measurements to the store and reloads the
// model — campaigns double as the calibration training loop. Without
// the flag, "auto" still works from the committed fallback table.
//
// With -pprof-addr, a second listener serves net/http/pprof
// (/debug/pprof/...) on its own mux, so live CPU and heap profiles of
// a loaded daemon are one `go tool pprof` away. It is opt-in and
// separately addressed on purpose: the profile endpoints never share a
// port with the public API, so they can be bound to localhost while
// the API faces the network.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unsched/internal/service"
)

// splitPeers parses the -peers list: comma-separated, blanks skipped,
// whitespace trimmed. URL validation itself lives in the fleet layer,
// which rejects a malformed member loudly at startup.
func splitPeers(csv string) []string {
	var out []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker goroutines; 0 means GOMAXPROCS")
	queue := flag.Int("queue", 0, "request queue depth before 429; 0 means 4x workers")
	cache := flag.Int("cache", 4096, "schedule cache entries; negative disables caching")
	cacheDir := flag.String("cache-dir", "", "directory for disk-backed cache persistence; empty keeps the cache in memory only")
	qualityDB := flag.String("quality-db", "", "quality store file calibrating algorithm \"auto\"; campaigns append to it, empty uses the committed fallback table only")
	campaigns := flag.Int("campaigns", 2, "maximum concurrently running campaigns")
	peers := flag.String("peers", "", "comma-separated base URLs of every fleet member (enables fleet mode); empty runs solo")
	self := flag.String("self", "", "this daemon's own base URL as peers reach it; required with -peers")
	peerBudget := flag.Duration("peer-budget", 0, "peer lookup budget, hedge included; 0 means 75ms")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown deadline")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables profiling")
	flag.Parse()

	svc, err := service.NewServer(service.Options{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		CacheDir:     *cacheDir,
		QualityStore: *qualityDB,
		MaxCampaigns: *campaigns,
		Peers:        splitPeers(*peers),
		SelfURL:      *self,
		PeerBudget:   *peerBudget,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "unschedd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		// An explicit mux rather than http.DefaultServeMux: importing
		// net/http/pprof registers its handlers globally, and serving
		// the default mux would silently expose them on any future
		// listener that does the same.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "unschedd: pprof on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				fmt.Fprintln(os.Stderr, "unschedd: pprof listener:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "unschedd: listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "unschedd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "unschedd: forced shutdown:", err)
		}
		svc.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "unschedd:", err)
			svc.Close()
			os.Exit(1)
		}
	}
}
