// Command unsched schedules one unstructured communication pattern and
// reports what the paper's algorithms make of it: phase counts,
// contention checks, simulated communication time on the iPSC/860
// model, and optional schedule listings.
//
// Usage examples:
//
//	unsched -n 64 -d 8 -bytes 4096                 # compare all algorithms
//	unsched -n 64 -d 8 -bytes 4096 -alg RS_NL -trace
//	unsched -n 64 -d 8 -bytes 4096 -alg auto       # calibrated pick
//	unsched -pattern hotspot -n 64 -d 8 -bytes 1024
//	unsched -pattern halo:16x16:512 -n 64            # any workload spec
//	unsched -load pattern.txt -alg LP -gantt
//
// With -server the CLI schedules against a running unschedd daemon
// instead of computing locally; -binary negotiates the daemon's
// compact binary response encoding and -batch streams all algorithms
// through one POST /v1/schedule/batch request:
//
//	unsched -server http://localhost:8080 -n 256 -d 8 -bytes 4096
//	unsched -server http://localhost:8080 -binary -alg RS_NL
//	unsched -server http://localhost:8080 -batch
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"unsched/internal/comm"
	"unsched/internal/costmodel"
	"unsched/internal/hypercube"
	"unsched/internal/ipsc"
	"unsched/internal/mesh"
	"unsched/internal/quality"
	"unsched/internal/sched"
	"unsched/internal/topo"
	"unsched/internal/trace"
	"unsched/internal/workload"
)

func main() {
	n := flag.Int("n", 64, "processor count (power of two)")
	d := flag.Int("d", 8, "density: messages sent/received per processor")
	bytes := flag.Int64("bytes", 4096, "uniform message size")
	pattern := flag.String("pattern", "dregular", "workload: dregular|random|hotspot|bitcomp|alltoall|mixed, or any workload spec (halo:WxH:BYTES, spmv:NNZ:BYTES, perm:BYTES, ...)")
	topoName := flag.String("topo", "cube", "topology: cube|mesh|torus (mesh/torus need a square node count)")
	load := flag.String("load", "", "load a communication matrix from file instead of generating")
	alg := flag.String("alg", "", "run one algorithm (auto|AC|LP|RS_N|RS_NL|GREEDY|GREEDY_LF); default: compare all")
	seed := flag.Int64("seed", 7, "random seed")
	doTrace := flag.Bool("trace", false, "print the phase-by-phase schedule")
	doGantt := flag.Bool("gantt", false, "print a per-node phase occupancy chart")
	doHeat := flag.Bool("heatmap", false, "print the communication matrix heatmap")
	saveSched := flag.String("save", "", "write the (single -alg) schedule to this file for reuse")
	server := flag.String("server", "", "base URL of a running unschedd; schedule remotely instead of locally")
	binary := flag.Bool("binary", false, "with -server: negotiate the compact binary response encoding")
	batch := flag.Bool("batch", false, "with -server: submit all algorithms as one streaming batch")
	flag.Parse()

	if *saveSched != "" && *alg == "" {
		fatal(fmt.Errorf("-save requires a single -alg"))
	}
	if (*binary || *batch) && *server == "" {
		fatal(fmt.Errorf("-binary and -batch require -server"))
	}

	if *server != "" {
		algs := []string{"AC", "LP", "RS_N", "RS_NL", "RS_NL_SZ", "GREEDY", "GREEDY_LF"}
		if *alg != "" {
			algs = []string{*alg}
		}
		var m *comm.Matrix
		if *load != "" {
			var err error
			if m, err = buildMatrix(*load, *pattern, *n, *d, *bytes, *seed); err != nil {
				fatal(err)
			}
		}
		req, err := remoteRequest(m, *pattern, *n, *d, *bytes, *topoName, *seed)
		if err != nil {
			fatal(err)
		}
		if err := runRemote(*server, algs, req, *binary, *batch); err != nil {
			fatal(err)
		}
		return
	}

	m, err := buildMatrix(*load, *pattern, *n, *d, *bytes, *seed)
	if err != nil {
		fatal(err)
	}
	net, err := buildTopology(*topoName, m.N())
	if err != nil {
		fatal(err)
	}
	params := costmodel.DefaultIPSC860()

	fmt.Printf("pattern: n=%d messages=%d density=%d total=%d bytes\n",
		m.N(), m.MessageCount(), m.Density(), m.TotalBytes())
	if *doHeat {
		fmt.Print(trace.MatrixHeatmap(m))
	}

	algs := []string{"AC", "LP", "RS_N", "RS_NL", "RS_NL_SZ", "GREEDY", "GREEDY_LF"}
	if *alg != "" {
		algs = []string{*alg}
	}
	if *alg == "auto" {
		// The same resolution the daemon performs, minus a calibration
		// store: the committed fallback table ranks the matrix's feature
		// bin, which is all a one-shot CLI run can know.
		var model *quality.Model
		chosen := model.Pick(net.Name(), sched.MeasureFeatures(m))[0]
		fmt.Printf("auto: resolved to %s (committed fallback calibration)\n", chosen)
		algs = []string{chosen}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tphases\tpairwise\tcomp(ms)\tcomm(ms)\tlink-free")
	for _, name := range algs {
		if err := runOne(tw, name, m, net, params, *seed, *doTrace, *doGantt, *saveSched); err != nil {
			fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "unsched:", err)
	os.Exit(1)
}

func buildMatrix(load, pattern string, n, d int, bytes, seed int64) (*comm.Matrix, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return comm.Read(f)
	}
	rng := rand.New(rand.NewSource(seed))
	switch pattern {
	case "dregular":
		return comm.DRegular(n, d, bytes, rng)
	case "random":
		return comm.UniformRandom(n, d, bytes, rng)
	case "hotspot":
		return comm.HotSpot(n, d, bytes, max(1, n/16), 0.7, rng)
	case "bitcomp":
		return comm.BitComplement(n, bytes)
	case "alltoall":
		return comm.AllToAll(n, bytes)
	case "mixed":
		return comm.MixedSizes(n, d, bytes/8+1, bytes, rng)
	default:
		// Anything else is a workload spec: the same canonical grammar
		// the campaign engine and the unschedd service speak, sized here
		// by -n and ignoring -d/-bytes (the spec carries its own
		// parameters).
		sp, err := workload.ParseSpec(pattern)
		if err != nil {
			return nil, fmt.Errorf("pattern %q is neither a named pattern nor a workload spec: %w", pattern, err)
		}
		if err := sp.ValidateFor(n); err != nil {
			return nil, err
		}
		return sp.Build(n, rng)
	}
}

func buildTopology(name string, n int) (topo.Topology, error) {
	switch name {
	case "cube":
		return hypercube.ForNodes(n)
	case "mesh", "torus":
		side := 1
		for side*side < n {
			side++
		}
		if side*side != n {
			return nil, fmt.Errorf("mesh/torus need a square node count, got %d", n)
		}
		return mesh.New(side, side, name == "torus")
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func runOne(tw *tabwriter.Writer, name string, m *comm.Matrix, net topo.Topology,
	params costmodel.Params, seed int64, doTrace, doGantt bool, savePath string) error {
	rng := rand.New(rand.NewSource(seed))
	if name == "AC" {
		order, err := sched.AC(m)
		if err != nil {
			return err
		}
		res, err := ipsc.RunAC(net, params, order, m)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "AC\t-\t-\t0.00\t%.2f\t-\n", res.MakespanUS/1000)
		return nil
	}

	var s *sched.Schedule
	var err error
	switch name {
	case "LP":
		s, err = sched.LP(m)
	case "RS_N":
		s, err = sched.RSN(m, rng)
	case "RS_NL":
		s, err = sched.RSNL(m, net, rng)
	case "RS_NL_SZ":
		s, err = sched.RSNLSized(m, net, rng)
	case "GREEDY":
		s, err = sched.Greedy(m)
	case "GREEDY_LF":
		s, err = sched.GreedyLargestFirst(m)
	default:
		return fmt.Errorf("unknown algorithm %q", name)
	}
	if err != nil {
		return err
	}
	if err := s.Validate(m); err != nil {
		return fmt.Errorf("%s produced an invalid schedule: %w", name, err)
	}
	linkFree := "yes"
	if err := s.ValidateLinkFree(net); err != nil {
		linkFree = "no"
	}

	var res ipsc.Result
	switch name {
	case "LP":
		res, err = ipsc.RunLP(net, params, s)
	case "RS_NL", "RS_NL_SZ":
		res, err = ipsc.RunS1(net, params, s)
	default:
		res, err = ipsc.RunS2(net, params, s)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "%s\t%d\t%.0f%%\t%.2f\t%.2f\t%s\n",
		name, s.NumPhases(), 100*s.PairwiseFraction(),
		params.CompTimeMS(s.Ops), res.MakespanUS/1000, linkFree)

	if doTrace {
		if err := trace.WriteSchedule(os.Stdout, s); err != nil {
			return err
		}
	}
	if doGantt {
		fmt.Print(trace.Gantt(s, 80))
	}
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return err
		}
		if _, err := s.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "schedule written to %s (reload with sched.ReadSchedule)\n", savePath)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
