// Remote mode: with -server the CLI stops computing locally and
// becomes a client of a running unschedd daemon, exercising the same
// public wire surface any other client would use — JSON by default,
// the compact binary envelope with -binary, and the NDJSON batch
// stream with -batch. The pattern travels as a workload spec when it
// was generated (the daemon rebuilds it deterministically from the
// request's content hash) and as explicit triples when -load gave us
// a concrete matrix.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"

	"unsched"
	"unsched/internal/comm"
)

// remoteWorkload maps the CLI's named patterns onto the canonical
// workload spec grammar the daemon speaks. Specs (anything with a
// colon) pass through untouched.
func remoteWorkload(pattern string, d int, bytes int64) (string, error) {
	if strings.Contains(pattern, ":") {
		return pattern, nil
	}
	switch pattern {
	case "dregular", "random":
		name := pattern
		if name == "random" {
			name = "uniform"
		}
		return fmt.Sprintf("%s:%d:%d", name, d, bytes), nil
	case "bitcomp", "alltoall":
		return fmt.Sprintf("%s:%d", pattern, bytes), nil
	default:
		return "", fmt.Errorf("pattern %q has no remote form; pass a workload spec (e.g. hotspot:8:4096:4)", pattern)
	}
}

// remoteTopology renders the -topo/-n flags as a topology spec string.
func remoteTopology(name string, n int) (string, error) {
	switch name {
	case "cube":
		dim := 0
		for 1<<dim < n {
			dim++
		}
		if 1<<dim != n {
			return "", fmt.Errorf("cube needs a power-of-two node count, got %d", n)
		}
		return fmt.Sprintf("cube:%d", dim), nil
	case "mesh", "torus":
		side := 1
		for side*side < n {
			side++
		}
		if side*side != n {
			return "", fmt.Errorf("mesh/torus need a square node count, got %d", n)
		}
		return fmt.Sprintf("%s:%dx%d", name, side, side), nil
	default:
		return "", fmt.Errorf("unknown topology %q", name)
	}
}

// remoteRequest assembles the ScheduleRequest shared by every
// algorithm this invocation runs. m is non-nil when -load supplied an
// explicit matrix; otherwise the generated pattern travels by spec.
func remoteRequest(m *comm.Matrix, pattern string, n, d int, bytes int64,
	topoName string, seed int64) (unsched.ScheduleRequest, error) {
	req := unsched.ScheduleRequest{Seed: seed}
	if m != nil {
		msgs := m.Messages()
		wm := &unsched.WireMatrix{N: m.N(), Messages: make([][3]int64, len(msgs))}
		for i, msg := range msgs {
			wm.Messages[i] = [3]int64{int64(msg.Src), int64(msg.Dst), msg.Bytes}
		}
		req.Matrix = wm
		spec, err := remoteTopology(topoName, m.N())
		if err != nil {
			return req, err
		}
		req.Topology = &unsched.WireTopology{Spec: spec}
		return req, nil
	}
	wl, err := remoteWorkload(pattern, d, bytes)
	if err != nil {
		return req, err
	}
	spec, err := remoteTopology(topoName, n)
	if err != nil {
		return req, err
	}
	req.Workload = wl
	req.Topology = &unsched.WireTopology{Spec: spec}
	return req, nil
}

// runRemote drives the daemon at base once per algorithm (or once for
// all of them with -batch) and prints the same comparison table the
// local mode does, minus simulated times: the daemon's schedule
// endpoint reports structure, not the iPSC model run.
func runRemote(base string, algs []string, req unsched.ScheduleRequest, binary, batch bool) error {
	base = strings.TrimRight(base, "/")
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tchosen\tphases\tops\tlink-free\tcached\tkey")
	var err error
	if batch {
		err = remoteBatch(tw, base, algs, req)
	} else {
		for _, alg := range algs {
			one := req
			one.Algorithm = alg
			if err = remoteOne(tw, base, one, binary); err != nil {
				break
			}
		}
	}
	if err != nil {
		return err
	}
	return tw.Flush()
}

func printResultRow(tw io.Writer, alg string, key string, cached bool, res *unsched.ScheduleResult) {
	phases, ops := 0, int64(0)
	if res.Schedule != nil {
		phases = len(res.Schedule.Phases)
		ops = res.Schedule.Ops
	}
	linkFree := "no"
	if res.LinkFree {
		linkFree = "yes"
	}
	fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%v\t%.12s\n",
		alg, res.Chosen, phases, ops, linkFree, cached, key)
}

// remoteOne runs one algorithm through POST /v1/schedule, negotiating
// the binary envelope when asked and decoding whichever form came
// back.
func remoteOne(tw io.Writer, base string, req unsched.ScheduleRequest, binary bool) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/schedule", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", unsched.ContentTypeJSON)
	if binary {
		hreq.Header.Set("Accept", unsched.ContentTypeBinary)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return remoteError(resp.StatusCode, raw)
	}
	if binary && resp.Header.Get("Content-Type") == unsched.ContentTypeBinary {
		dec, err := unsched.DecodeBinaryResponse(raw)
		if err != nil {
			return fmt.Errorf("bad binary response: %w", err)
		}
		if dec.Schedule == nil {
			return fmt.Errorf("binary response carries no schedule")
		}
		printResultRow(tw, req.Algorithm, dec.Key, dec.Cached, dec.Schedule)
		return nil
	}
	var env unsched.ResponseEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return fmt.Errorf("bad response envelope: %w", err)
	}
	var res unsched.ScheduleResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		return fmt.Errorf("bad schedule result: %w", err)
	}
	printResultRow(tw, req.Algorithm, env.Key, env.Cached, &res)
	return nil
}

// remoteBatch submits every algorithm as one POST /v1/schedule/batch
// and prints rows in arrival order as the NDJSON stream delivers them.
func remoteBatch(tw io.Writer, base string, algs []string, req unsched.ScheduleRequest) error {
	batch := unsched.BatchScheduleRequest{Requests: make([]unsched.ScheduleRequest, len(algs))}
	for i, alg := range algs {
		one := req
		one.Algorithm = alg
		batch.Requests[i] = one
	}
	body, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/schedule/batch", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", unsched.ContentTypeJSON)
	hreq.Header.Set("Accept", unsched.ContentTypeNDJSON)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return remoteError(resp.StatusCode, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var item unsched.BatchItem
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("bad batch line: %w", err)
		}
		if item.Index < 0 || item.Index >= len(algs) {
			return fmt.Errorf("batch item index %d out of range", item.Index)
		}
		alg := algs[item.Index]
		if item.Error != nil {
			fmt.Fprintf(tw, "%s\t[%s] %s\t-\t-\t-\t-\t-\n", alg, item.Error.Code, item.Error.Message)
			continue
		}
		var res unsched.ScheduleResult
		if err := json.Unmarshal(item.Result, &res); err != nil {
			return fmt.Errorf("bad batch result for %s: %w", alg, err)
		}
		printResultRow(tw, alg, item.Key, item.Cached, &res)
	}
	return sc.Err()
}

// remoteError turns a non-2xx body into a readable error, preferring
// the versioned {code, message} detail when the daemon sent one.
func remoteError(status int, raw []byte) error {
	var env unsched.ErrorEnvelope
	if json.Unmarshal(raw, &env) == nil && env.Err.Code != "" {
		return fmt.Errorf("server: %d [%s] %s", status, env.Err.Code, env.Err.Message)
	}
	msg := strings.TrimSpace(string(raw))
	if len(msg) > 200 {
		msg = msg[:200] + "..."
	}
	return fmt.Errorf("server: %d %s", status, msg)
}
